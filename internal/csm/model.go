// Package csm implements the paper's contribution: current source models
// (CSMs) of CMOS logic cells, including the proposed MCSM — a multiple-
// input-switching model that captures the internal (stack) node voltage.
//
// Three model kinds are provided, matching the paper's comparison set:
//
//   - KindSIS — the single-input-switching CSM of reference [5] (§2.1):
//     Io(Vi,Vo) with nonlinear Ci, Co, and Miller CM.
//   - KindMISBaseline — the §3.1 extension to two switching inputs that
//     *ignores* internal node voltages: Io(VA,VB,Vo) plus CmA, CmB, Co.
//   - KindMCSM — the complete §3.2–3.3 model: Io(VA,VB,VN,Vo) and
//     IN(VA,VB,VN,Vo) current sources with CmA, CmB, Co, CN capacitances,
//     where node N is both an input and an output of the model (Fig. 8).
//
// Models are characterized from the transistor-level cells of
// internal/cells using the internal/spice simulator (the repo's HSPICE
// stand-in), stored as dense lookup tables (internal/table), and evaluated
// either as a spice.Element inside arbitrary networks (element.go) or with
// the paper's explicit update equations Eq. 4–5 (explicit.go).
package csm

import (
	"fmt"

	"mcsm/internal/table"
)

// Kind selects the model structure.
type Kind int

// Model kinds, in increasing fidelity.
const (
	// KindSIS is the single-input-switching CSM of §2.1 / reference [5].
	KindSIS Kind = iota
	// KindMISBaseline is the §3.1 MIS model without internal node state.
	KindMISBaseline
	// KindMCSM is the paper's complete model with the internal node.
	KindMCSM
)

// String names the kind as used in reports.
func (k Kind) String() string {
	switch k {
	case KindSIS:
		return "SIS-CSM"
	case KindMISBaseline:
		return "MIS-baseline"
	case KindMCSM:
		return "MCSM"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Model is a characterized current source model of one library cell.
//
// Table axes are ordered: modeled inputs (in Inputs order), then the
// internal node (KindMCSM only), then the output. Axis spans cover
// [−ΔV, Vdd+ΔV] per the paper's characterization margins.
//
// Sign conventions (fixed by the characterization and used consistently by
// both integrators):
//
//   - Io > 0 means the cell injects current *into* the output node
//     (charging the load); this is the negative of the paper's io arrow in
//     Fig. 1, which points into the cell.
//   - IN > 0 means the cell injects current into the internal node.
type Model struct {
	Kind     Kind
	Cell     string             // library cell name ("NOR2", …)
	Vdd      float64            // supply voltage the model was characterized at
	Inputs   []string           // modeled input pins, axis order
	Held     map[string]float64 // non-modeled input pins parked at these levels
	Internal string             // modeled internal node name (KindMCSM)
	DeltaV   float64            // characterization over/under-drive margin

	Io *table.Table // output current source
	IN *table.Table // internal-node current source (KindMCSM)

	Cm []*table.Table // Miller capacitances input↔output, one per modeled input
	Co *table.Table   // output capacitance (input couplings excluded)
	CN *table.Table   // internal node capacitance (KindMCSM)
	// CIn is the 1-D input capacitance per modeled input *excluding* the
	// couplings carried as explicit model branches (Cm, CmN): the loading a
	// fully instantiated Cell adds on top of its branch network.
	CIn []*table.Table
	// CPin is the paper's Eq. 3 receiver capacitance: the *total* 1-D pin
	// capacitance (including static Miller) that a fanout pin presents when
	// the receiving cell is not itself simulated — what ReceiverLoad uses.
	CPin []*table.Table

	// Internal-node Miller extension (beyond the paper's §3.2
	// simplification; nil when characterized with Config.NoInternalMiller):
	CmN  []*table.Table // coupling input↔internal node, one per modeled input
	CmNO *table.Table   // coupling output↔internal node
}

// HasInternalMiller reports whether the model carries the internal-node
// Miller extension tables.
func (m *Model) HasInternalMiller() bool {
	return m.Kind == KindMCSM && len(m.CmN) > 0 && m.CmNO != nil
}

// rank returns the dimensionality of the model's current/cap tables.
func (m *Model) rank() int {
	r := len(m.Inputs) + 1
	if m.Kind == KindMCSM {
		r++
	}
	return r
}

// Coords assembles a table coordinate vector from input voltages, the
// internal node voltage (ignored unless KindMCSM), and the output voltage.
// The dst slice is reused when it has sufficient capacity.
func (m *Model) Coords(dst []float64, vin []float64, vn, vo float64) []float64 {
	dst = dst[:0]
	dst = append(dst, vin...)
	if m.Kind == KindMCSM {
		dst = append(dst, vn)
	}
	return append(dst, vo)
}

// Validate checks structural consistency: table presence and ranks.
func (m *Model) Validate() error {
	if len(m.Inputs) == 0 || len(m.Inputs) > 2 {
		return fmt.Errorf("csm: model has %d inputs, want 1 or 2", len(m.Inputs))
	}
	if m.Kind == KindSIS && len(m.Inputs) != 1 {
		return fmt.Errorf("csm: SIS model must have exactly 1 input")
	}
	want := m.rank()
	if m.Io == nil || m.Io.Rank() != want {
		return fmt.Errorf("csm: Io table missing or rank != %d", want)
	}
	if m.Co == nil || m.Co.Rank() != want {
		return fmt.Errorf("csm: Co table missing or rank != %d", want)
	}
	if len(m.Cm) != len(m.Inputs) {
		return fmt.Errorf("csm: %d Miller tables for %d inputs", len(m.Cm), len(m.Inputs))
	}
	for i, cm := range m.Cm {
		if cm == nil || cm.Rank() != want {
			return fmt.Errorf("csm: Cm[%d] missing or rank != %d", i, want)
		}
	}
	if len(m.CIn) != len(m.Inputs) {
		return fmt.Errorf("csm: %d receiver-cap tables for %d inputs", len(m.CIn), len(m.Inputs))
	}
	for i, ci := range m.CIn {
		if ci == nil || ci.Rank() != 1 {
			return fmt.Errorf("csm: CIn[%d] missing or not rank 1", i)
		}
	}
	if len(m.CPin) != len(m.Inputs) {
		return fmt.Errorf("csm: %d pin-cap tables for %d inputs", len(m.CPin), len(m.Inputs))
	}
	for i, cp := range m.CPin {
		if cp == nil || cp.Rank() != 1 {
			return fmt.Errorf("csm: CPin[%d] missing or not rank 1", i)
		}
	}
	if m.Kind == KindMCSM {
		if m.IN == nil || m.IN.Rank() != want {
			return fmt.Errorf("csm: IN table missing or rank != %d", want)
		}
		if m.CN == nil || m.CN.Rank() != want {
			return fmt.Errorf("csm: CN table missing or rank != %d", want)
		}
		if m.Internal == "" {
			return fmt.Errorf("csm: MCSM model has no internal node name")
		}
		if len(m.CmN) > 0 || m.CmNO != nil {
			if len(m.CmN) != len(m.Inputs) || m.CmNO == nil {
				return fmt.Errorf("csm: incomplete internal-Miller tables")
			}
			for i, cn := range m.CmN {
				if cn == nil || cn.Rank() != want {
					return fmt.Errorf("csm: CmN[%d] missing or rank != %d", i, want)
				}
			}
			if m.CmNO.Rank() != want {
				return fmt.Errorf("csm: CmNO rank != %d", want)
			}
		}
	} else if m.IN != nil || m.CN != nil || len(m.CmN) > 0 || m.CmNO != nil {
		return fmt.Errorf("csm: non-MCSM model carries internal-node tables")
	}
	return nil
}

// ReceiverCapAt returns the total receiver (input pin) capacitance of
// modeled input i at input voltage v — the Eq. 3 load this cell presents
// to its driver when the cell itself is not simulated.
func (m *Model) ReceiverCapAt(i int, v float64) float64 {
	return m.CPin[i].At(v)
}

// MeanInternalCap returns the average CN over the table, used by the §3.4
// selective-modeling policy to compare internal charge storage against the
// external load.
func (m *Model) MeanInternalCap() float64 {
	if m.CN == nil {
		return 0
	}
	var sum float64
	for _, v := range m.CN.Data {
		sum += v
	}
	return sum / float64(len(m.CN.Data))
}
