package csm

import (
	"math"
	"testing"

	"mcsm/internal/cells"
	"mcsm/internal/spice"
	"mcsm/internal/wave"
)

// referenceHistory runs the transistor-level NOR2 history scenario with a
// lumped capacitive load (so model and reference see the same load) and
// returns the output waveform and internal node waveform.
func referenceHistory(t *testing.T, tech cells.Tech, caseNo int, cl float64, tm cells.HistoryTiming) (out, vn wave.Waveform) {
	t.Helper()
	wa, wb := cells.NOR2HistoryInputs(tech.Vdd, caseNo, tm)
	c := spice.NewCircuit()
	vddN := c.Node("vdd")
	a := c.Node("a")
	b := c.Node("b")
	outN := c.Node("out")
	c.AddVSource("VDD", vddN, spice.Ground, spice.DC(tech.Vdd))
	c.AddVSource("VA", a, spice.Ground, wa)
	c.AddVSource("VB", b, spice.Ground, wb)
	inst := cells.NOR2(c, tech, "X", []spice.Node{a, b}, outN, vddN, 1)
	c.AddCapacitor("CL", outN, spice.Ground, cl)
	eng := spice.NewEngine(c, spice.DefaultOptions())
	res, err := eng.Run(0, tm.TEnd, 1e-12)
	if err != nil {
		t.Fatalf("reference case %d: %v", caseNo, err)
	}
	return res.Wave(outN), res.Wave(inst.Internal["N"])
}

// delayFromSwitch measures the 50% rising output delay after the final
// '11'→'00' event.
func delayFromSwitch(t *testing.T, out wave.Waveform, vdd float64, tm cells.HistoryTiming) float64 {
	t.Helper()
	tIn := tm.TSwitch + tm.Slew/2
	tOut, err := wave.OutputCross50(out, vdd, true, tIn)
	if err != nil {
		t.Fatal(err)
	}
	return tOut - tIn
}

// TestMCSMTracksHistoryDelays is the repo-level Fig. 9 check: the MCSM
// reproduces both the fast ('10' history) and slow ('01' history) reference
// delays within a few percent, while the baseline MIS model — blind to the
// internal node — shows a much larger error on at least one case.
func TestMCSMTracksHistoryDelays(t *testing.T) {
	tech := cells.Default130()
	tm := cells.DefaultHistoryTiming()
	mcsm := fixtureModel(t, "NOR2", KindMCSM)
	base := fixtureModel(t, "NOR2", KindMISBaseline)
	cl := cells.FanoutCap(tech, 2)

	var refD, mcsmD, baseD [3]float64
	for caseNo := 1; caseNo <= 2; caseNo++ {
		refOut, _ := referenceHistory(t, tech, caseNo, cl, tm)
		refD[caseNo] = delayFromSwitch(t, refOut, tech.Vdd, tm)

		wa, wb := cells.NOR2HistoryInputs(tech.Vdd, caseNo, tm)
		ms, err := SimulateStage(mcsm, []wave.Waveform{wa, wb}, CapLoad(cl), 0, tm.TEnd, 1e-12)
		if err != nil {
			t.Fatalf("MCSM stage case %d: %v", caseNo, err)
		}
		mcsmD[caseNo] = delayFromSwitch(t, ms.Out, tech.Vdd, tm)

		bs, err := SimulateStage(base, []wave.Waveform{wa, wb}, CapLoad(cl), 0, tm.TEnd, 1e-12)
		if err != nil {
			t.Fatalf("baseline stage case %d: %v", caseNo, err)
		}
		baseD[caseNo] = delayFromSwitch(t, bs.Out, tech.Vdd, tm)
	}

	t.Logf("delays ps — ref: %.1f/%.1f  mcsm: %.1f/%.1f  baseline: %.1f/%.1f",
		refD[1]*1e12, refD[2]*1e12, mcsmD[1]*1e12, mcsmD[2]*1e12, baseD[1]*1e12, baseD[2]*1e12)

	// Reference must show the stack effect at this light load.
	refSpread := (refD[2] - refD[1]) / refD[1]
	if refSpread < 0.03 {
		t.Fatalf("reference stack effect only %.1f%%", 100*refSpread)
	}
	// MCSM follows both cases.
	var mcsmMaxErr, baseMaxErr float64
	for caseNo := 1; caseNo <= 2; caseNo++ {
		me := math.Abs(mcsmD[caseNo]-refD[caseNo]) / refD[caseNo]
		be := math.Abs(baseD[caseNo]-refD[caseNo]) / refD[caseNo]
		if me > mcsmMaxErr {
			mcsmMaxErr = me
		}
		if be > baseMaxErr {
			baseMaxErr = be
		}
	}
	t.Logf("max delay error: MCSM %.1f%%, baseline %.1f%%", 100*mcsmMaxErr, 100*baseMaxErr)
	if mcsmMaxErr > 0.10 {
		t.Errorf("MCSM max delay error %.1f%% exceeds 10%% (FastConfig bound)", 100*mcsmMaxErr)
	}
	// The paper's headline: the internal-node-blind model errs much more.
	if baseMaxErr < mcsmMaxErr {
		t.Errorf("baseline (%.1f%%) unexpectedly beats MCSM (%.1f%%)", 100*baseMaxErr, 100*mcsmMaxErr)
	}
	// Baseline cannot separate the two histories.
	baseSpread := math.Abs(baseD[2]-baseD[1]) / baseD[1]
	if baseSpread > refSpread/2 {
		t.Errorf("baseline shows history sensitivity %.1f%% it should not have (ref %.1f%%)",
			100*baseSpread, 100*refSpread)
	}
}

// TestMCSMInternalNodeWaveform checks the model's VN against the
// transistor-level internal node (Fig. 3's content, model side).
func TestMCSMInternalNodeWaveform(t *testing.T) {
	tech := cells.Default130()
	tm := cells.DefaultHistoryTiming()
	mcsm := fixtureModel(t, "NOR2", KindMCSM)
	cl := cells.FanoutCap(tech, 2)

	for caseNo := 1; caseNo <= 2; caseNo++ {
		_, refVN := referenceHistory(t, tech, caseNo, cl, tm)
		wa, wb := cells.NOR2HistoryInputs(tech.Vdd, caseNo, tm)
		ms, err := SimulateStage(mcsm, []wave.Waveform{wa, wb}, CapLoad(cl), 0, tm.TEnd, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		// Compare the floating-window level (the state that matters for the
		// '00' transition).
		tProbe := tm.TSwitch - 0.15e-9
		refLvl := refVN.At(tProbe)
		gotLvl := ms.VN.At(tProbe)
		if math.Abs(gotLvl-refLvl) > 0.2 {
			t.Errorf("case %d: VN before switch: model %.3f vs ref %.3f", caseNo, gotLvl, refLvl)
		}
	}
}

// TestExplicitMatchesImplicit cross-checks the paper's Eq. 4/5 update
// against the implicit solver on the same model (EXP-A3's base case).
func TestExplicitMatchesImplicit(t *testing.T) {
	tech := cells.Default130()
	tm := cells.DefaultHistoryTiming()
	mcsm := fixtureModel(t, "NOR2", KindMCSM)
	cl := cells.FanoutCap(tech, 2)
	wa, wb := cells.NOR2HistoryInputs(tech.Vdd, 2, tm)

	imp, err := SimulateStage(mcsm, []wave.Waveform{wa, wb}, CapLoad(cl), 0, tm.TEnd, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := SimulateExplicit(mcsm, []wave.Waveform{wa, wb}, cl, 0, tm.TEnd, 0.2e-12)
	if err != nil {
		t.Fatal(err)
	}
	rmse := wave.RMSE(imp.Out, exp.Out, 0, tm.TEnd, 2000) / tech.Vdd
	if rmse > 0.02 {
		t.Errorf("explicit vs implicit RMSE %.2f%% of Vdd", 100*rmse)
	}
	dImp := delayFromSwitch(t, imp.Out, tech.Vdd, tm)
	dExp := delayFromSwitch(t, exp.Out, tech.Vdd, tm)
	if math.Abs(dImp-dExp) > 2e-12 {
		t.Errorf("integrator delay mismatch: %.2fps vs %.2fps", dImp*1e12, dExp*1e12)
	}
}

func TestInitialState(t *testing.T) {
	m := fixtureModel(t, "NOR2", KindMCSM)
	// '00': output high, N high.
	vn, vo, err := InitialState(m, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vo-m.Vdd) > 0.1 || math.Abs(vn-m.Vdd) > 0.1 {
		t.Errorf("'00' state: vn=%.3f vo=%.3f, want both ≈ Vdd", vn, vo)
	}
	// '10': output low, N held high through M4.
	vn, vo, err = InitialState(m, []float64{m.Vdd, 0})
	if err != nil {
		t.Fatal(err)
	}
	if vo > 0.1 || math.Abs(vn-m.Vdd) > 0.1 {
		t.Errorf("'10' state: vn=%.3f vo=%.3f, want vn≈Vdd vo≈0", vn, vo)
	}
	// '01': output low, N at the leakage-balance level, well below Vdd.
	vn, vo, err = InitialState(m, []float64{0, m.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	if vo > 0.1 || vn > 0.6 {
		t.Errorf("'01' state: vn=%.3f vo=%.3f, want vn well below Vdd", vn, vo)
	}
}

func TestLoadKinds(t *testing.T) {
	tech := cells.Default130()
	tm := cells.DefaultHistoryTiming()
	m := fixtureModel(t, "NOR2", KindMCSM)
	wa, wb := cells.NOR2HistoryInputs(tech.Vdd, 1, tm)
	inputs := []wave.Waveform{wa, wb}
	inv := fixtureModel(t, "INV", KindSIS)

	loads := map[string]Load{
		"cap":      CapLoad(3e-15),
		"rc":       RCLoad{R: 200, C: 3e-15},
		"pi":       PiLoad{C1: 1e-15, R: 150, C2: 2e-15},
		"receiver": ReceiverLoad{Model: inv, InputIndex: 0, Count: 2},
		"multi":    MultiLoad{CapLoad(1e-15), RCLoad{R: 100, C: 1e-15}},
	}
	var prevDelay float64
	for name, ld := range loads {
		sr, err := SimulateStage(m, inputs, ld, 0, tm.TEnd, 1e-12)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		d := delayFromSwitch(t, sr.Out, tech.Vdd, tm)
		if d <= 0 || d > 500e-12 {
			t.Errorf("load %s: implausible delay %g", name, d)
		}
		prevDelay = d
	}
	_ = prevDelay
}

func TestSimulateStageValidation(t *testing.T) {
	m := fixtureModel(t, "NOR2", KindMCSM)
	if _, err := SimulateStage(m, nil, CapLoad(1e-15), 0, 1e-9, 1e-12); err == nil {
		t.Error("missing inputs accepted")
	}
	if _, err := SimulateExplicit(m, nil, 1e-15, 0, 1e-9, 1e-12); err == nil {
		t.Error("explicit missing inputs accepted")
	}
	w := wave.Constant(0, 0, 1e-9)
	if _, err := SimulateExplicit(m, []wave.Waveform{w, w}, 1e-15, 0, 0, 1e-12); err == nil {
		t.Error("explicit empty window accepted")
	}
}

// TestAdaptiveStageMatchesFixed cross-checks the adaptive stage integrator
// against the fixed-step path on the slow history case.
func TestAdaptiveStageMatchesFixed(t *testing.T) {
	tech := cells.Default130()
	tm := cells.DefaultHistoryTiming()
	m := fixtureModel(t, "NOR2", KindMCSM)
	cl := cells.FanoutCap(tech, 2)
	wa, wb := cells.NOR2HistoryInputs(tech.Vdd, 2, tm)
	inputs := []wave.Waveform{wa, wb}

	fixed, err := SimulateStage(m, inputs, CapLoad(cl), 0, tm.TEnd, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := SimulateStageAdaptive(m, inputs, CapLoad(cl), 0, tm.TEnd, spice.DefaultAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	dF := delayFromSwitch(t, fixed.Out, tech.Vdd, tm)
	dA := delayFromSwitch(t, ad.Out, tech.Vdd, tm)
	if diff := math.Abs(dF - dA); diff > 1.5e-12 {
		t.Errorf("adaptive vs fixed stage delay differ by %.2fps", diff*1e12)
	}
	if ad.Res.Steps() >= fixed.Res.Steps()/3 {
		t.Errorf("adaptive stage used %d steps vs fixed %d", ad.Res.Steps(), fixed.Res.Steps())
	}
	t.Logf("stage steps: adaptive %d vs fixed %d; delay diff %.2fps",
		ad.Res.Steps(), fixed.Res.Steps(), math.Abs(dF-dA)*1e12)
}
