package csm

import (
	"encoding/json"
	"mcsm/internal/cells"
	"path/filepath"
	"strings"
	"testing"

	"mcsm/internal/wave"
)

func TestModelJSONRoundtrip(t *testing.T) {
	m := fixtureModel(t, "NOR2", KindMCSM)
	dir := t.TempDir()
	path := filepath.Join(dir, "nor2.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != m.Kind || back.Cell != m.Cell || back.Internal != m.Internal {
		t.Fatalf("identity mismatch after roundtrip: %+v", back)
	}
	if !back.HasInternalMiller() {
		t.Fatal("extension tables lost in roundtrip")
	}
	// Identical behavior on a stage simulation.
	tech := cells.Default130()
	tm := cells.DefaultHistoryTiming()
	wa, wb := cells.NOR2HistoryInputs(tech.Vdd, 2, tm)
	s1, err := SimulateStage(m, []wave.Waveform{wa, wb}, CapLoad(3e-15), 0, tm.TEnd, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SimulateStage(back, []wave.Waveform{wa, wb}, CapLoad(3e-15), 0, tm.TEnd, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	if rmse := wave.RMSE(s1.Out, s2.Out, 0, tm.TEnd, 500); rmse > 1e-12 {
		t.Errorf("stage outputs differ after roundtrip: RMSE %g", rmse)
	}
}

func TestModelJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"kind":"bogus","cell":"X","vdd":1.2}`,
		`{"kind":"mcsm","cell":"X","vdd":1.2,"inputs":["A","B"]}`, // missing tables
		`not json`,
	}
	for _, c := range cases {
		var m Model
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("corrupt model accepted: %s", c)
		}
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel("/nonexistent/path.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestKindString(t *testing.T) {
	if KindSIS.String() != "SIS-CSM" || KindMISBaseline.String() != "MIS-baseline" || KindMCSM.String() != "MCSM" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestMeanInternalCap(t *testing.T) {
	m := fixtureModel(t, "NOR2", KindMCSM)
	mean := m.MeanInternalCap()
	min, max := m.CN.MinMax()
	if mean < min || mean > max {
		t.Errorf("mean %g outside [%g,%g]", mean, min, max)
	}
	sis := fixtureModel(t, "INV", KindSIS)
	if sis.MeanInternalCap() != 0 {
		t.Error("SIS model reports internal cap")
	}
}

func TestSummary(t *testing.T) {
	m := fixtureModel(t, "NOR2", KindMCSM)
	s := m.Summary()
	for _, want := range []string{"MCSM model of NOR2", "internal node: N", "Io", "CN", "CPinA"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary lacks %q:\n%s", want, s)
		}
	}
	sis := fixtureModel(t, "INV", KindSIS)
	if s := sis.Summary(); !strings.Contains(s, "SIS-CSM model of INV") {
		t.Errorf("SIS summary wrong:\n%s", s)
	}
}

func TestVerify(t *testing.T) {
	tech := cells.Default130()
	m := fixtureModel(t, "NOR2", KindMCSM)
	rep, err := Verify(tech, m, 3e-15, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 5 {
		t.Fatalf("scenarios = %d, want 5", len(rep.Scenarios))
	}
	if worst := rep.MaxDelayErr(); worst > 0.06 {
		t.Errorf("verification worst delay error %.2f%% (FastConfig bound 6%%)\n%s",
			100*worst, rep.String())
	}
	out := rep.String()
	for _, want := range []string{"MIS both fall", "worst delay error"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q", want)
		}
	}
	// SIS single-input battery.
	inv := fixtureModel(t, "INV", KindSIS)
	repInv, err := Verify(tech, inv, 3e-15, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(repInv.Scenarios) != 2 {
		t.Errorf("INV scenarios = %d, want 2", len(repInv.Scenarios))
	}
}
