package csm

import (
	"fmt"
	"sort"

	"mcsm/internal/cells"
	"mcsm/internal/spice"
	"mcsm/internal/wave"
)

// harness is a characterization bench: one transistor-level cell with
// voltage sources attached to its modeled inputs, its output, and — when
// pinInternal is set — its internal node, exactly as §3.3 prescribes.
// Sources use mutable DC stimuli so thousands of sweep points reuse one
// circuit/engine pair; ramp extractions temporarily swap in a waveform.
type harness struct {
	tech cells.Tech
	spec cells.Spec
	ckt  *spice.Circuit
	eng  *spice.Engine
	inst cells.Instance

	srcIn   []*spice.VSource
	stimIn  []*spice.SetDC
	srcOut  *spice.VSource
	stimOut *spice.SetDC
	srcN    *spice.VSource
	stimN   *spice.SetDC

	inNodes []spice.Node // modeled input nodes, model order
	outNode spice.Node
	nNode   spice.Node // internal node (0 when the cell has none)

	// Fast-path state (Config.Fast). warm carries the previous DC
	// solution so neighboring grid points seed each other's Newton;
	// dtSeed carries the previous ramp's accepted-step history so the
	// next adaptive run skips the grow-from-minimum transient.
	fast   bool
	warm   []float64
	dtSeed float64
}

// newHarness builds the bench. modelInputs selects which pins get sweep
// sources; all other input pins are parked at the spec's non-controlling
// level. When pinInternal is true the spec's internal node is also pinned.
// fast enables the approximate solver path (chord Newton, warm starts,
// adaptive ramp stepping); off, every solve matches the golden-pinned
// exact numerics.
func newHarness(tech cells.Tech, spec cells.Spec, modelInputs []string, pinInternal, fast bool) (*harness, error) {
	h := &harness{tech: tech, spec: spec, fast: fast}
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	c.AddVSource("VDD", vdd, spice.Ground, spice.DC(tech.Vdd))

	modeled := make(map[string]bool, len(modelInputs))
	for _, pin := range modelInputs {
		modeled[pin] = true
	}
	inputNodes := make([]spice.Node, len(spec.Inputs))
	for i, pin := range spec.Inputs {
		inputNodes[i] = c.Node("in_" + pin)
		if modeled[pin] {
			continue
		}
		c.AddVSource("V"+pin, inputNodes[i], spice.Ground, spice.DC(spec.NonControllingLevelFor(pin, tech.Vdd)))
	}
	// Sweep sources in modelInputs order.
	for _, pin := range modelInputs {
		idx := -1
		for i, p := range spec.Inputs {
			if p == pin {
				idx = i
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("csm: model input %q not a pin of %s", pin, spec.Name)
		}
		stim := &spice.SetDC{}
		h.stimIn = append(h.stimIn, stim)
		h.srcIn = append(h.srcIn, c.AddVSource("V"+pin, inputNodes[idx], spice.Ground, stim))
		h.inNodes = append(h.inNodes, inputNodes[idx])
	}

	out := c.Node("out")
	h.outNode = out
	h.stimOut = &spice.SetDC{}
	h.srcOut = c.AddVSource("VOUT", out, spice.Ground, h.stimOut)

	h.inst = spec.Build(c, tech, "X", inputNodes, out, vdd, spec.Drive)
	if spec.Internal != "" {
		h.nNode = h.inst.Internal[spec.Internal]
	}

	if pinInternal {
		if spec.Internal == "" {
			return nil, fmt.Errorf("csm: cell %s has no internal node to pin", spec.Name)
		}
		n, ok := h.inst.Internal[spec.Internal]
		if !ok {
			return nil, fmt.Errorf("csm: cell %s instance lacks internal node %q", spec.Name, spec.Internal)
		}
		h.stimN = &spice.SetDC{}
		h.srcN = c.AddVSource("VN", n, spice.Ground, h.stimN)
	}

	h.ckt = c
	opt := spice.DefaultOptions()
	// Backward Euler: the extraction ramps drive capacitances directly
	// between ideal sources, where trapezoidal companions ring between 0
	// and 2·C·s around the true C·s (nothing damps them in a fully pinned
	// network). BE is exact for constant-slope excitation of a capacitor.
	opt.Method = spice.BackwardEuler
	if fast {
		// Chord Newton: reuse LU factors for up to 3 iterations while the
		// residual keeps contracting. Characterization solves are mildly
		// nonlinear steps from good guesses — exactly chord's sweet spot.
		opt.JacobianLag = 3
	}
	h.eng = spice.NewEngine(c, opt)
	return h, nil
}

// dcSolve computes the operating point at the current stimulus settings.
// In fast mode Newton warm-starts from the previous point's solution —
// neighboring sweep points differ by one grid increment — and the result
// is retained as the next seed; DCFrom falls back to the full homotopy
// ladder internally if the warm start diverges.
func (h *harness) dcSolve() ([]float64, error) {
	if !h.fast {
		return h.eng.DCAt(0)
	}
	var x []float64
	var err error
	if h.warm != nil {
		x, err = h.eng.DCFrom(h.warm, 0)
	} else {
		x, err = h.eng.DCAt(0)
	}
	if err != nil {
		h.warm = nil
		return nil, err
	}
	h.warm = x
	return x, nil
}

// setPoint assigns the DC sweep values. vn is ignored when the internal
// node is not pinned.
func (h *harness) setPoint(vin []float64, vn, vo float64) {
	for i := range h.stimIn {
		h.stimIn[i].V = vin[i]
	}
	h.stimOut.V = vo
	if h.stimN != nil {
		h.stimN.V = vn
	}
}

// dcCurrents solves the operating point and returns the currents the cell
// injects into the output node and (when pinned) the internal node. The
// VSource branch current is the current flowing from the node into the
// source, which by KCL equals the cell's injection.
func (h *harness) dcCurrents() (io, in float64, err error) {
	x, err := h.dcSolve()
	if err != nil {
		return 0, 0, err
	}
	io = x[h.srcOut.AuxIndex()]
	if h.srcN != nil {
		in = x[h.srcN.AuxIndex()]
	}
	return io, in, nil
}

// rampSpec describes one capacitance-extraction transient: the source being
// ramped, the span it covers, and the sweep timing.
type rampSpec struct {
	src    *spice.VSource
	stim   *spice.SetDC // restored after the run
	lo, hi float64      // table axis span to sample
	pad    float64      // extra drive beyond the span so samples sit on constant slope
	slope  float64      // V/s
	tFlat  float64      // settle time before the ramp starts
}

// runRamp performs the transient, measures the named source's branch
// current, and returns the measurement result plus the time at which the
// ramp crosses voltage v. The returned waveform's samples come from the
// wave pool — the caller must wave.Release it after measuring.
func (h *harness) runRamp(rs rampSpec, measure *spice.VSource, dt float64) (iw wave.Waveform, timeOf func(v float64) float64, err error) {
	loPad := rs.lo - rs.pad
	hiPad := rs.hi + rs.pad
	duration := (hiPad - loPad) / rs.slope
	end := rs.tFlat + duration + rs.tFlat
	ramp := wave.SaturatedRamp(loPad, hiPad, rs.tFlat, duration, end)
	rs.src.SetStimulus(ramp)
	defer rs.src.SetStimulus(rs.stim)

	var res *spice.Result
	if h.fast {
		res, err = h.runRampFast(end, dt)
	} else {
		res, err = h.eng.Run(0, end, dt)
	}
	if err != nil {
		return wave.Waveform{}, nil, fmt.Errorf("csm: ramp extraction: %w", err)
	}
	iw = res.AuxWavePooled(measure.AuxIndex())
	timeOf = func(v float64) float64 {
		return rs.tFlat + (v-loPad)/rs.slope
	}
	return iw, timeOf, nil
}

// runRampFast is the Config.Fast transient: a warm-started DC solve
// followed by ΔV-adaptive stepping whose first step is seeded from the
// previous ramp's accepted-step history. The ΔV bound (Vdd/24, ≈50 mV at
// 1.2 V) keeps the sampled current waveform resolved through the ramp
// while flat settle intervals coast at up to 16·dt.
func (h *harness) runRampFast(end, dt float64) (*spice.Result, error) {
	x0, err := h.dcSolve()
	if err != nil {
		return nil, err
	}
	aopt := spice.AdaptiveOptions{
		DtMin:    dt / 2,
		DtMax:    dt * 16,
		MaxDV:    h.tech.Vdd / 24,
		GrowBy:   1.4,
		ShrinkBy: 0.5,
		DtInit:   h.dtSeed,
	}
	res, err := h.eng.RunAdaptiveFrom(x0, 0, end, aopt)
	if err != nil {
		return nil, err
	}
	h.dtSeed = seedStep(res.Times, aopt.DtMin, aopt.DtMax)
	return res, nil
}

// seedStep distills a run's accepted time points into the next run's
// initial step: the median accepted step, clamped to the adaptive window.
// The median (not the mean) ignores both the start-up ramp from DtMin and
// the long coasting steps of the settle tails.
func seedStep(times []float64, dtMin, dtMax float64) float64 {
	if len(times) < 3 {
		return 0
	}
	diffs := make([]float64, len(times)-1)
	for i := 1; i < len(times); i++ {
		diffs[i-1] = times[i] - times[i-1]
	}
	sort.Float64s(diffs)
	med := diffs[len(diffs)/2]
	if med < dtMin {
		med = dtMin
	}
	if med > dtMax {
		med = dtMax
	}
	return med
}
