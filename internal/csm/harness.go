package csm

import (
	"fmt"

	"mcsm/internal/cells"
	"mcsm/internal/spice"
	"mcsm/internal/wave"
)

// harness is a characterization bench: one transistor-level cell with
// voltage sources attached to its modeled inputs, its output, and — when
// pinInternal is set — its internal node, exactly as §3.3 prescribes.
// Sources use mutable DC stimuli so thousands of sweep points reuse one
// circuit/engine pair; ramp extractions temporarily swap in a waveform.
type harness struct {
	tech cells.Tech
	spec cells.Spec
	ckt  *spice.Circuit
	eng  *spice.Engine
	inst cells.Instance

	srcIn   []*spice.VSource
	stimIn  []*spice.SetDC
	srcOut  *spice.VSource
	stimOut *spice.SetDC
	srcN    *spice.VSource
	stimN   *spice.SetDC

	inNodes []spice.Node // modeled input nodes, model order
	outNode spice.Node
	nNode   spice.Node // internal node (0 when the cell has none)
}

// newHarness builds the bench. modelInputs selects which pins get sweep
// sources; all other input pins are parked at the spec's non-controlling
// level. When pinInternal is true the spec's internal node is also pinned.
func newHarness(tech cells.Tech, spec cells.Spec, modelInputs []string, pinInternal bool) (*harness, error) {
	h := &harness{tech: tech, spec: spec}
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	c.AddVSource("VDD", vdd, spice.Ground, spice.DC(tech.Vdd))

	modeled := make(map[string]bool, len(modelInputs))
	for _, pin := range modelInputs {
		modeled[pin] = true
	}
	inputNodes := make([]spice.Node, len(spec.Inputs))
	for i, pin := range spec.Inputs {
		inputNodes[i] = c.Node("in_" + pin)
		if modeled[pin] {
			continue
		}
		c.AddVSource("V"+pin, inputNodes[i], spice.Ground, spice.DC(spec.NonControllingLevelFor(pin, tech.Vdd)))
	}
	// Sweep sources in modelInputs order.
	for _, pin := range modelInputs {
		idx := -1
		for i, p := range spec.Inputs {
			if p == pin {
				idx = i
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("csm: model input %q not a pin of %s", pin, spec.Name)
		}
		stim := &spice.SetDC{}
		h.stimIn = append(h.stimIn, stim)
		h.srcIn = append(h.srcIn, c.AddVSource("V"+pin, inputNodes[idx], spice.Ground, stim))
		h.inNodes = append(h.inNodes, inputNodes[idx])
	}

	out := c.Node("out")
	h.outNode = out
	h.stimOut = &spice.SetDC{}
	h.srcOut = c.AddVSource("VOUT", out, spice.Ground, h.stimOut)

	h.inst = spec.Build(c, tech, "X", inputNodes, out, vdd, spec.Drive)
	if spec.Internal != "" {
		h.nNode = h.inst.Internal[spec.Internal]
	}

	if pinInternal {
		if spec.Internal == "" {
			return nil, fmt.Errorf("csm: cell %s has no internal node to pin", spec.Name)
		}
		n, ok := h.inst.Internal[spec.Internal]
		if !ok {
			return nil, fmt.Errorf("csm: cell %s instance lacks internal node %q", spec.Name, spec.Internal)
		}
		h.stimN = &spice.SetDC{}
		h.srcN = c.AddVSource("VN", n, spice.Ground, h.stimN)
	}

	h.ckt = c
	opt := spice.DefaultOptions()
	// Backward Euler: the extraction ramps drive capacitances directly
	// between ideal sources, where trapezoidal companions ring between 0
	// and 2·C·s around the true C·s (nothing damps them in a fully pinned
	// network). BE is exact for constant-slope excitation of a capacitor.
	opt.Method = spice.BackwardEuler
	h.eng = spice.NewEngine(c, opt)
	return h, nil
}

// setPoint assigns the DC sweep values. vn is ignored when the internal
// node is not pinned.
func (h *harness) setPoint(vin []float64, vn, vo float64) {
	for i := range h.stimIn {
		h.stimIn[i].V = vin[i]
	}
	h.stimOut.V = vo
	if h.stimN != nil {
		h.stimN.V = vn
	}
}

// dcCurrents solves the operating point and returns the currents the cell
// injects into the output node and (when pinned) the internal node. The
// VSource branch current is the current flowing from the node into the
// source, which by KCL equals the cell's injection.
func (h *harness) dcCurrents() (io, in float64, err error) {
	x, err := h.eng.DCAt(0)
	if err != nil {
		return 0, 0, err
	}
	io = x[h.srcOut.AuxIndex()]
	if h.srcN != nil {
		in = x[h.srcN.AuxIndex()]
	}
	return io, in, nil
}

// rampSpec describes one capacitance-extraction transient: the source being
// ramped, the span it covers, and the sweep timing.
type rampSpec struct {
	src    *spice.VSource
	stim   *spice.SetDC // restored after the run
	lo, hi float64      // table axis span to sample
	pad    float64      // extra drive beyond the span so samples sit on constant slope
	slope  float64      // V/s
	tFlat  float64      // settle time before the ramp starts
}

// runRamp performs the transient, measures the named source's branch
// current, and returns the measurement result plus the time at which the
// ramp crosses voltage v.
func (h *harness) runRamp(rs rampSpec, measure *spice.VSource, dt float64) (iw wave.Waveform, timeOf func(v float64) float64, err error) {
	loPad := rs.lo - rs.pad
	hiPad := rs.hi + rs.pad
	duration := (hiPad - loPad) / rs.slope
	end := rs.tFlat + duration + rs.tFlat
	ramp := wave.SaturatedRamp(loPad, hiPad, rs.tFlat, duration, end)
	rs.src.SetStimulus(ramp)
	defer rs.src.SetStimulus(rs.stim)

	res, err := h.eng.Run(0, end, dt)
	if err != nil {
		return wave.Waveform{}, nil, fmt.Errorf("csm: ramp extraction: %w", err)
	}
	iw = res.AuxWave(measure.AuxIndex())
	timeOf = func(v float64) float64 {
		return rs.tFlat + (v-loPad)/rs.slope
	}
	return iw, timeOf, nil
}
