package csm

import (
	"fmt"

	"mcsm/internal/cells"
	"mcsm/internal/table"
)

// Characterize builds a CSM of the given kind for a library cell, running
// the full §3.3 procedure against the transistor-level reference:
//
//  1. Current tables Io (and IN for MCSM) from DC sweeps with every model
//     node forced over [−Δv, Vdd+Δv].
//  2. Capacitance tables from transient saturated-ramp analyses — one node
//     ramped, the others held — with exact DC-current subtraction and
//     averaging over the configured ramp slopes (unless cfg selects the
//     direct operating-point extraction).
//  3. Receiver input capacitances (Eq. 3) from input-ramp transients with
//     the internal node left free, averaged over the secondary grid, and
//     reduced to input-voltage dependence only (§3.3's practicality
//     argument).
func Characterize(tech cells.Tech, spec cells.Spec, kind Kind, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults(tech.Vdd)

	inputs := spec.ModelInputs
	if kind == KindSIS {
		inputs = inputs[:1]
	}
	if kind != KindSIS && len(inputs) != 2 {
		return nil, fmt.Errorf("csm: %s needs 2 modeled inputs, %s has %d", kind, spec.Name, len(inputs))
	}
	if kind == KindMCSM && spec.Internal == "" {
		return nil, fmt.Errorf("csm: %s has no internal node; use KindMISBaseline", spec.Name)
	}

	m := &Model{
		Kind:   kind,
		Cell:   spec.Name,
		Vdd:    tech.Vdd,
		Inputs: append([]string(nil), inputs...),
		Held:   heldLevels(spec, inputs, tech.Vdd),
		DeltaV: cfg.DeltaV,
	}
	if kind == KindMCSM {
		m.Internal = spec.Internal
	}

	// One shared bench serves the whole current+capacitance procedure: the
	// circuit/engine pair is built once, not once per table. Every solve on
	// it is self-contained (DC inits from scratch in exact mode, transient
	// runs reset capacitor histories), so sharing is bit-neutral for the
	// golden-pinned exact path while letting fast mode chain warm starts
	// across the grid.
	h, err := newHarness(tech, spec, inputs, kind == KindMCSM, cfg.Fast)
	if err != nil {
		return nil, err
	}
	if err := fillCurrents(m, h, cfg); err != nil {
		return nil, err
	}
	if cfg.DirectCaps {
		err = fillCapsDirect(m, h, cfg)
	} else {
		err = fillCapsTransient(m, h, cfg)
	}
	if err != nil {
		return nil, err
	}
	if err := fillReceiverCaps(m, tech, spec, cfg); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("csm: characterization produced invalid model: %w", err)
	}
	return m, nil
}

// heldLevels returns the park level for every input pin not in modeled.
// For KindSIS this includes the cell's second modeled input.
func heldLevels(spec cells.Spec, modeled []string, vdd float64) map[string]float64 {
	inModel := make(map[string]bool, len(modeled))
	for _, p := range modeled {
		inModel[p] = true
	}
	held := map[string]float64{}
	for _, p := range spec.Inputs {
		if !inModel[p] {
			held[p] = spec.NonControllingLevelFor(p, vdd)
		}
	}
	return held
}

// axisNames returns the table axis names for the model: inputs, optional
// internal node, output.
func axisNames(m *Model) []string {
	names := append([]string(nil), m.Inputs...)
	if m.Kind == KindMCSM {
		names = append(names, m.Internal)
	}
	return append(names, "Out")
}

// railAxis builds a rail-anchored axis: n points uniformly spanning
// [0, Vdd] — so the exact logic levels are grid points — plus one margin
// point at each end (−Δv and Vdd+Δv). Anchoring the rails matters: the
// model currents are exponential in the gate overdrive, and linearly
// interpolating a nominal input level against an overdriven margin point
// inflates subthreshold currents by an order of magnitude.
func railAxis(name string, vdd, deltaV float64, n int) table.Axis {
	if n < 2 {
		n = 2
	}
	pts := make([]float64, 0, n+2)
	pts = append(pts, -deltaV)
	for k := 0; k < n; k++ {
		pts = append(pts, vdd*float64(k)/float64(n-1))
	}
	pts = append(pts, vdd+deltaV)
	return table.Axis{Name: name, Points: pts}
}

// makeAxes builds rail-anchored axes with n interior points each.
// nInternal, when positive, overrides the density of the internal-node axis
// (the IN(VN) exponential knee needs finer sampling, see Config).
func makeAxes(m *Model, n, nInternal int) []table.Axis {
	names := axisNames(m)
	axes := make([]table.Axis, len(names))
	for i, name := range names {
		pts := n
		if nInternal > 0 && m.Kind == KindMCSM && i == len(m.Inputs) {
			pts = nInternal
		}
		axes[i] = railAxis(name, m.Vdd, m.DeltaV, pts)
	}
	return axes
}

// splitCoords unpacks a table coordinate vector into input voltages, the
// internal voltage (NaN-free: equals 0 for non-MCSM), and output voltage.
func splitCoords(m *Model, coords []float64) (vin []float64, vn, vo float64) {
	k := len(m.Inputs)
	vin = coords[:k]
	if m.Kind == KindMCSM {
		vn = coords[k]
		k++
	}
	vo = coords[k]
	return vin, vn, vo
}

// fillCurrents sweeps the DC grid and fills Io (and IN for MCSM). The
// sweep is row-batched against the shared bench: the output axis is the
// innermost loop, so all grid rows of one sweep variable run in a single
// engine setup, and — in fast mode — every solve warm-starts Newton from
// its grid neighbor one output increment away (the operating points
// differ by a fraction of Vdd, so the warm start converges in a couple of
// iterations instead of a full homotopy ladder).
func fillCurrents(m *Model, h *harness, cfg Config) error {
	io, err := table.New(makeAxes(m, cfg.GridCurrent, cfg.GridInternal)...)
	if err != nil {
		return err
	}
	var iN *table.Table
	if m.Kind == KindMCSM {
		if iN, err = table.New(makeAxes(m, cfg.GridCurrent, cfg.GridInternal)...); err != nil {
			return err
		}
	}
	axes := io.Axes
	outAxis := len(axes) - 1
	err = forEachCombo(axes, outAxis, func(idx []int, coords []float64) error {
		for k, vo := range axes[outAxis].Points {
			coords[outAxis] = vo
			idx[outAxis] = k
			vin, vn, _ := splitCoords(m, coords)
			h.setPoint(vin, vn, vo)
			ioVal, inVal, err := h.dcCurrents()
			if err != nil {
				return fmt.Errorf("csm: DC sweep at %v: %w", coords, err)
			}
			io.Set(ioVal, idx...)
			if iN != nil {
				iN.Set(inVal, idx...)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	m.Io = io
	m.IN = iN
	return nil
}

// indicesOf locates exact grid indices for a coordinate vector produced by
// Table.Fill (coordinates are exact axis points).
func indicesOf(t *table.Table, coords []float64) []int {
	idx := make([]int, len(coords))
	for d, c := range coords {
		pts := t.Axes[d].Points
		best := 0
		for i, p := range pts {
			if abs(p-c) < abs(pts[best]-c) {
				best = i
			}
		}
		idx[d] = best
	}
	return idx
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
