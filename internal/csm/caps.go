package csm

import (
	"fmt"
	"math"

	"mcsm/internal/spice"
	"mcsm/internal/table"
	"mcsm/internal/wave"
)

// capFloor is the minimum stored capacitance. Lumped subtraction (e.g.
// Co = Co_total − ΣCm) can dip slightly negative from extraction noise; a
// small positive floor keeps the Eq. 4 denominator well-defined.
const capFloor = 1e-19

// settleTime is the flat interval before each extraction ramp begins.
const settleTime = 20e-12

// forEachCombo iterates every index combination over axes, holding axis
// `skip` out of the iteration. It fills coords[d] for all d ≠ skip before
// invoking fn. fn may set coords[skip] freely.
func forEachCombo(axes []table.Axis, skip int, fn func(idx []int, coords []float64) error) error {
	rank := len(axes)
	idx := make([]int, rank)
	coords := make([]float64, rank)
	var rec func(d int) error
	rec = func(d int) error {
		if d == rank {
			return fn(idx, coords)
		}
		if d == skip {
			return rec(d + 1)
		}
		for i := range axes[d].Points {
			idx[d] = i
			coords[d] = axes[d].Points[i]
			if err := rec(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// fillCapsTransient runs the paper's §3.3 capacitance extraction: for each
// capacitance, saturated ramps are applied to the corresponding node while
// all other model nodes are held at DC grid values; the monitored source
// current, minus the exact DC component, divided by the ramp slope, yields
// the capacitance. Values are averaged over the configured slopes.
func fillCapsTransient(m *Model, h *harness, cfg Config) error {
	axes := makeAxes(m, cfg.GridCap, 0)
	nIn := len(m.Inputs)
	outAxis := len(axes) - 1
	intAxis := -1
	if m.Kind == KindMCSM {
		intAxis = nIn
	}

	// Miller capacitances: ramp each input, watch the output source.
	m.Cm = make([]*table.Table, nIn)
	var err error
	for i := 0; i < nIn; i++ {
		t, err := extractCapTable(m, h, cfg, axes, i, h.srcOut, dcIo)
		if err != nil {
			return fmt.Errorf("csm: Cm[%s]: %w", m.Inputs[i], err)
		}
		m.Cm[i] = t
	}

	// Internal-node Miller extension: ramp inputs/output, watch the N
	// source (enabled unless the paper's §3.2 simplification is requested).
	withNMiller := m.Kind == KindMCSM && !cfg.NoInternalMiller
	if withNMiller {
		m.CmN = make([]*table.Table, nIn)
		for i := 0; i < nIn; i++ {
			t, err := extractCapTable(m, h, cfg, axes, i, h.srcN, dcIN)
			if err != nil {
				return fmt.Errorf("csm: CmN[%s]: %w", m.Inputs[i], err)
			}
			m.CmN[i] = t
		}
		cmno, err := extractCapTable(m, h, cfg, axes, outAxis, h.srcN, dcIN)
		if err != nil {
			return fmt.Errorf("csm: CmNO: %w", err)
		}
		m.CmNO = cmno
	}

	// Total output capacitance: ramp the output, watch the output source.
	coTotal, err := extractCapTable(m, h, cfg, axes, outAxis, h.srcOut, dcIo)
	if err != nil {
		return fmt.Errorf("csm: Co: %w", err)
	}
	// The ramp sees every capacitance attached to the output, including the
	// Miller couplings; the model applies those separately, so subtract.
	co := coTotal
	for _, cm := range m.Cm {
		co, err = table.Combine(co, cm, func(total, miller float64) float64 { return total - miller })
		if err != nil {
			return err
		}
	}
	if withNMiller {
		co, err = table.Combine(co, m.CmNO, func(total, miller float64) float64 { return total - miller })
		if err != nil {
			return err
		}
	}
	m.Co = co.Map(func(v float64) float64 { return math.Max(v, capFloor) })

	// Internal node capacitance: ramp N, watch the N source. Couplings of N
	// lump into CN except those carried as explicit branches (the CmN/CmNO
	// extension); without the extension everything folds into CN, matching
	// the paper's §3.2 lumping.
	if m.Kind == KindMCSM {
		cn, err := extractCapTable(m, h, cfg, axes, intAxis, h.srcN, dcIN)
		if err != nil {
			return fmt.Errorf("csm: CN: %w", err)
		}
		if withNMiller {
			for _, cmn := range m.CmN {
				cn, err = table.Combine(cn, cmn, func(total, miller float64) float64 { return total - miller })
				if err != nil {
					return err
				}
			}
			cn, err = table.Combine(cn, m.CmNO, func(total, miller float64) float64 { return total - miller })
			if err != nil {
				return err
			}
		}
		m.CN = cn.Map(func(v float64) float64 { return math.Max(v, capFloor) })
	}
	return nil
}

// dcSel selects which DC current is subtracted from a ramp measurement.
type dcSel int

const (
	dcNone dcSel = iota // input-pin measurements carry no DC component
	dcIo                // subtract the output source's DC current
	dcIN                // subtract the internal-node source's DC current
)

// extractCapTable sweeps all non-ramped axes over the cap grid and, per
// combination, runs one ramp per configured slope on rampAxis, measuring at
// the given source. The selected DC current at the sampled coordinates is
// removed via exact per-point DC solves.
func extractCapTable(m *Model, h *harness, cfg Config, axes []table.Axis, rampAxis int, measure *spice.VSource, sel dcSel) (*table.Table, error) {
	t, err := table.New(axes...)
	if err != nil {
		return nil, err
	}
	rampPts := axes[rampAxis].Points
	lo, hi := rampPts[0], rampPts[len(rampPts)-1]
	pad := (hi - lo) / float64(len(rampPts)-1)

	// Identify the ramped source.
	nIn := len(m.Inputs)
	var src *spice.VSource
	var stim *spice.SetDC
	switch {
	case rampAxis < nIn:
		src, stim = h.srcIn[rampAxis], h.stimIn[rampAxis]
	case m.Kind == KindMCSM && rampAxis == nIn:
		src, stim = h.srcN, h.stimN
	default:
		src, stim = h.srcOut, h.stimOut
	}

	dcAt := make([]float64, len(rampPts))
	acc := make([]float64, len(rampPts))

	err = forEachCombo(axes, rampAxis, func(idx []int, coords []float64) error {
		// Exact DC currents at each sample point of the ramped axis.
		for k, v := range rampPts {
			coords[rampAxis] = v
			vin, vn, vo := splitCoords(m, coords)
			h.setPoint(vin, vn, vo)
			io, iN, err := h.dcCurrents()
			if err != nil {
				return fmt.Errorf("dc subtraction at %v: %w", coords, err)
			}
			switch sel {
			case dcIo:
				dcAt[k] = io
			case dcIN:
				dcAt[k] = iN
			default:
				dcAt[k] = 0
			}
		}
		for k := range acc {
			acc[k] = 0
		}
		// One transient per slope; park the DC point mid-span for the
		// non-ramped value of the ramped node before the ramp takes over.
		coords[rampAxis] = lo
		vin, vn, vo := splitCoords(m, coords)
		h.setPoint(vin, vn, vo)
		for _, slew := range cfg.SlewTimes {
			slope := (hi - lo) / slew
			iw, timeOf, err := h.runRamp(rampSpec{
				src: src, stim: stim,
				lo: lo, hi: hi, pad: pad,
				slope: slope, tFlat: settleTime,
			}, measure, cfg.TranDt)
			if err != nil {
				return err
			}
			// Sign convention: the monitored source reads the current the
			// cell injects into its node. Ramping a *different* node drives
			// coupling current into the monitored node (+C·s); ramping the
			// monitored node itself makes its own capacitances draw charge
			// *out* of it (−C·s).
			sign := 1.0
			if src == measure {
				sign = -1.0
			}
			for k, v := range rampPts {
				iCap := iw.At(timeOf(v)) - dcAt[k]
				acc[k] += sign * iCap / slope
			}
			wave.Release(&iw)
		}
		for k := range rampPts {
			idx[rampAxis] = k
			t.Set(math.Max(acc[k]/float64(len(cfg.SlewTimes)), 0), idx...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// fillCapsDirect computes the lumped capacitances by summing the device
// terminal capacitances at each DC operating point — the fast path and the
// EXP-A2 comparison partner for the transient procedure.
func fillCapsDirect(m *Model, h *harness, cfg Config) error {
	axes := makeAxes(m, cfg.GridCap, 0)
	nIn := len(m.Inputs)
	var err error

	withNMiller := m.Kind == KindMCSM && !cfg.NoInternalMiller

	m.Cm = make([]*table.Table, nIn)
	for i := range m.Cm {
		if m.Cm[i], err = table.New(axes...); err != nil {
			return err
		}
	}
	if m.Co, err = table.New(axes...); err != nil {
		return err
	}
	if m.Kind == KindMCSM {
		if m.CN, err = table.New(axes...); err != nil {
			return err
		}
	}
	if withNMiller {
		m.CmN = make([]*table.Table, nIn)
		for i := range m.CmN {
			if m.CmN[i], err = table.New(axes...); err != nil {
				return err
			}
		}
		if m.CmNO, err = table.New(axes...); err != nil {
			return err
		}
	}

	idxBuf := make([]int, len(axes))
	var sweepErr error
	m.Co.Fill(func(coords []float64) float64 {
		if sweepErr != nil {
			return capFloor
		}
		vin, vn, vo := splitCoords(m, coords)
		h.setPoint(vin, vn, vo)
		x, err := h.dcSolve()
		if err != nil {
			sweepErr = fmt.Errorf("csm: direct caps DC at %v: %w", coords, err)
			return capFloor
		}
		lump := lumpDeviceCaps(h, x)
		copy(idxBuf, indicesOf(m.Co, coords))
		var sumInN float64
		for i := range m.Cm {
			m.Cm[i].Set(lump.inOut[i], idxBuf...)
			sumInN += lump.inN[i]
		}
		co := lump.outStatic
		if withNMiller {
			for i := range m.CmN {
				m.CmN[i].Set(lump.inN[i], idxBuf...)
			}
			m.CmNO.Set(lump.outN, idxBuf...)
			m.CN.Set(math.Max(lump.nStatic, capFloor), idxBuf...)
		} else {
			// The paper's lumping: all N couplings fold into CN; the N-Out
			// coupling additionally loads the output, exactly as the
			// transient extraction measures it.
			co += lump.outN
			if m.CN != nil {
				m.CN.Set(math.Max(lump.nStatic+lump.outN+sumInN, capFloor), idxBuf...)
			}
		}
		return math.Max(co, capFloor)
	})
	return sweepErr
}

// lumped holds raw pairwise capacitance sums at one operating point,
// grouped by which model nodes the physical terminals map to. "Static"
// means supply, ground, a held input, or an unmodeled internal node.
type lumped struct {
	inOut     []float64 // input i <-> output
	inN       []float64 // input i <-> modeled internal node
	inStatic  []float64 // input i <-> static
	outN      float64   // output <-> modeled internal node
	outStatic float64   // output <-> static
	nStatic   float64   // modeled internal node <-> static
}

// lumpDeviceCaps walks the harness's MOSFETs and accumulates their terminal
// capacitances into raw pairwise categories at the solution x.
func lumpDeviceCaps(h *harness, x []float64) lumped {
	nIn := len(h.inNodes)
	lp := lumped{
		inOut:    make([]float64, nIn),
		inN:      make([]float64, nIn),
		inStatic: make([]float64, nIn),
	}
	vOf := func(n spice.Node) float64 {
		if n == spice.Ground {
			return 0
		}
		return x[int(n)-1]
	}
	inIdx := func(n spice.Node) int {
		for i, in := range h.inNodes {
			if in == n {
				return i
			}
		}
		return -1
	}
	addPair := func(a, b spice.Node, c float64) {
		if c == 0 || a == b {
			return
		}
		ia, ib := inIdx(a), inIdx(b)
		isOutA, isOutB := a == h.outNode, b == h.outNode
		isNA := a == h.nNode && h.nNode != 0
		isNB := b == h.nNode && h.nNode != 0
		switch {
		case (ia >= 0 && isOutB) || (ib >= 0 && isOutA):
			k := ia
			if k < 0 {
				k = ib
			}
			lp.inOut[k] += c
		case (ia >= 0 && isNB) || (ib >= 0 && isNA):
			k := ia
			if k < 0 {
				k = ib
			}
			lp.inN[k] += c
		case (isOutA && isNB) || (isOutB && isNA):
			lp.outN += c
		case isNA || isNB:
			lp.nStatic += c
		case isOutA || isOutB:
			lp.outStatic += c
		case ia >= 0:
			lp.inStatic[ia] += c
		case ib >= 0:
			lp.inStatic[ib] += c
		}
	}
	for _, el := range h.ckt.Elements() {
		mos, ok := el.(*spice.MOSFET)
		if !ok {
			continue
		}
		d, g, s, b := mos.Terminals()
		caps := mos.CapsAt(vOf(d), vOf(g), vOf(s), vOf(b))
		addPair(g, s, caps.CGS)
		addPair(g, d, caps.CGD)
		addPair(g, b, caps.CGB)
		addPair(d, b, caps.CDB)
		addPair(s, b, caps.CSB)
	}
	return lp
}
