package csm

import (
	"encoding/json"
	"fmt"
	"os"

	"mcsm/internal/table"
)

// modelJSON is the wire format of a characterized model.
type modelJSON struct {
	Kind     string             `json:"kind"`
	Cell     string             `json:"cell"`
	Vdd      float64            `json:"vdd"`
	Inputs   []string           `json:"inputs"`
	Held     map[string]float64 `json:"held,omitempty"`
	Internal string             `json:"internal,omitempty"`
	DeltaV   float64            `json:"delta_v"`

	Io   *table.Table   `json:"io"`
	IN   *table.Table   `json:"in,omitempty"`
	Cm   []*table.Table `json:"cm"`
	Co   *table.Table   `json:"co"`
	CN   *table.Table   `json:"cn,omitempty"`
	CIn  []*table.Table `json:"cin"`
	CPin []*table.Table `json:"cpin"`
	CmN  []*table.Table `json:"cmn,omitempty"`
	CmNO *table.Table   `json:"cmno,omitempty"`
}

var kindNames = map[Kind]string{
	KindSIS:         "sis",
	KindMISBaseline: "mis-baseline",
	KindMCSM:        "mcsm",
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		Kind: kindNames[m.Kind], Cell: m.Cell, Vdd: m.Vdd,
		Inputs: m.Inputs, Held: m.Held, Internal: m.Internal, DeltaV: m.DeltaV,
		Io: m.Io, IN: m.IN, Cm: m.Cm, Co: m.Co, CN: m.CN, CIn: m.CIn, CPin: m.CPin, CmN: m.CmN, CmNO: m.CmNO,
	})
}

// UnmarshalJSON implements json.Unmarshaler and validates the result.
func (m *Model) UnmarshalJSON(b []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(b, &mj); err != nil {
		return err
	}
	kind := Kind(-1)
	for k, name := range kindNames {
		if name == mj.Kind {
			kind = k
		}
	}
	if kind < 0 {
		return fmt.Errorf("csm: unknown model kind %q", mj.Kind)
	}
	*m = Model{
		Kind: kind, Cell: mj.Cell, Vdd: mj.Vdd,
		Inputs: mj.Inputs, Held: mj.Held, Internal: mj.Internal, DeltaV: mj.DeltaV,
		Io: mj.Io, IN: mj.IN, Cm: mj.Cm, Co: mj.Co, CN: mj.CN, CIn: mj.CIn, CPin: mj.CPin, CmN: mj.CmN, CmNO: mj.CmNO,
	}
	return m.Validate()
}

// Save writes the model to a JSON file.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads a model from a JSON file.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("csm: %s: %w", path, err)
	}
	return &m, nil
}
