package csm

import (
	"sync"
	"testing"

	"mcsm/internal/cells"
)

// Shared characterized models: characterization costs seconds, so tests
// share one model per (cell, kind) pair, built on first use.
var fixtures struct {
	mu     sync.Mutex
	models map[string]*Model
	errs   map[string]error
}

// fixtureModel characterizes (or returns the cached) model of the given
// cell and kind under FastConfig.
func fixtureModel(t *testing.T, cell string, kind Kind) *Model {
	t.Helper()
	key := cell + "/" + kind.String()
	fixtures.mu.Lock()
	defer fixtures.mu.Unlock()
	if fixtures.models == nil {
		fixtures.models = map[string]*Model{}
		fixtures.errs = map[string]error{}
	}
	if err, ok := fixtures.errs[key]; ok && err != nil {
		t.Fatalf("characterize %s: %v", key, err)
	}
	if m, ok := fixtures.models[key]; ok {
		return m
	}
	tech := cells.Default130()
	spec, err := cells.Get(cell)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Characterize(tech, spec, kind, FastConfig())
	fixtures.models[key] = m
	fixtures.errs[key] = err
	if err != nil {
		t.Fatalf("characterize %s: %v", key, err)
	}
	return m
}
