package csm

// Selector implements the paper's §3.4 selective modeling: "one can use the
// simple MCSM for the logic cells that drive a relatively large load.
// Otherwise, the complete MCSM should be used." The internal-node effect
// scales with the ratio of internal charge storage to external load, so the
// rule compares the load capacitance against the cell's mean internal
// capacitance.
type Selector struct {
	// Complete is the full internal-node model (KindMCSM).
	Complete *Model
	// Simple is the internal-node-blind model (KindMISBaseline).
	Simple *Model
	// Threshold is the load-to-internal-capacitance ratio above which the
	// simple model is considered sufficient. Zero selects DefaultThreshold.
	Threshold float64
}

// DefaultThreshold is the CL/CN ratio above which the history effect drops
// under a few percent in the Fig. 5 sweep (ablation EXP-A4 justifies it).
const DefaultThreshold = 8.0

// Pick returns the model to use for a stage driving the given lumped load
// capacitance.
func (s Selector) Pick(loadCap float64) *Model {
	th := s.Threshold
	if th <= 0 {
		th = DefaultThreshold
	}
	cn := s.Complete.MeanInternalCap()
	if cn <= 0 {
		return s.Simple
	}
	if loadCap < th*cn {
		return s.Complete
	}
	return s.Simple
}
