package csm

import (
	"fmt"
	"strings"

	"mcsm/internal/table"
	"mcsm/internal/units"
)

// Summary renders a human-readable report of the model's structure and
// table statistics — what mcsm-char prints and what a reviewer checks
// first after characterization.
func (m *Model) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s model of %s (Vdd %s)\n", m.Kind, m.Cell, units.FormatVolts(m.Vdd))
	fmt.Fprintf(&sb, "  modeled inputs: %s\n", strings.Join(m.Inputs, ", "))
	if len(m.Held) > 0 {
		parts := make([]string, 0, len(m.Held))
		for pin, lvl := range m.Held {
			parts = append(parts, fmt.Sprintf("%s@%s", pin, units.FormatVolts(lvl)))
		}
		fmt.Fprintf(&sb, "  held inputs: %s\n", strings.Join(parts, ", "))
	}
	if m.Internal != "" {
		fmt.Fprintf(&sb, "  internal node: %s (internal Miller modeled: %v)\n",
			m.Internal, m.HasInternalMiller())
	}

	row := func(name string, t *table.Table, unit func(float64) string) {
		if t == nil {
			return
		}
		min, max := t.MinMax()
		dims := make([]string, len(t.Axes))
		for i, a := range t.Axes {
			dims[i] = fmt.Sprintf("%d", len(a.Points))
		}
		fmt.Fprintf(&sb, "  %-5s %-12s %8d pts  [%s .. %s]\n",
			name, strings.Join(dims, "x"), t.Size(), unit(min), unit(max))
	}
	row("Io", m.Io, units.FormatAmps)
	row("IN", m.IN, units.FormatAmps)
	for i, cm := range m.Cm {
		row("Cm"+m.Inputs[i], cm, units.FormatFarads)
	}
	row("Co", m.Co, units.FormatFarads)
	row("CN", m.CN, units.FormatFarads)
	for i, cmn := range m.CmN {
		row("CmN"+m.Inputs[i], cmn, units.FormatFarads)
	}
	row("CmNO", m.CmNO, units.FormatFarads)
	for i, ci := range m.CIn {
		row("CIn"+m.Inputs[i], ci, units.FormatFarads)
	}
	for i, cp := range m.CPin {
		row("CPin"+m.Inputs[i], cp, units.FormatFarads)
	}
	return sb.String()
}
