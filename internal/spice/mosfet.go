package spice

import "mcsm/internal/device"

// MOSFET is a four-terminal transistor element. The channel current is
// linearized by Newton each iteration; the five terminal capacitances
// (Meyer intrinsic + overlap + junction) are frozen at the start-of-step
// operating point and integrated with the engine's companion models — the
// per-step linearization described in DESIGN.md.
type MOSFET struct {
	name       string
	d, g, s, b Node
	mos        device.MOS

	// Per-step frozen capacitance values and their branch histories.
	caps                    device.Caps
	cgs, cgd, cgb, cdb, csb CapBranch

	// Per-element memos, private to this element so they share the
	// engine's single-goroutine discipline. vtc serves both the DC model
	// and the cap model (identical threshold expressions); jc serves the
	// per-step junction evaluations. The op memo replays the full model
	// evaluation when the terminal triple repeats exactly — the first
	// Newton assembly of each transient step re-evaluates the previous
	// step's accepted solution, which the accepted line-search trial
	// already computed.
	vtc                 device.ThresholdCache
	jc                  device.JunctionCache
	opValid             bool
	opVgs, opVds, opVbs float64
	op                  device.OP
}

// Name returns the element name.
func (m *MOSFET) Name() string { return m.name }

// Device returns the underlying compact-model instance.
func (m *MOSFET) Device() device.MOS { return m.mos }

// Terminals returns the drain, gate, source, and bulk nodes.
func (m *MOSFET) Terminals() (d, g, s, b Node) { return m.d, m.g, m.s, m.b }

// CapsAt evaluates the device capacitances at explicit terminal voltages.
// The direct (operating-point) capacitance extraction of internal/csm uses
// this to lump device caps without transient analysis.
func (m *MOSFET) CapsAt(vd, vg, vs, vb float64) device.Caps {
	return m.mos.CapacitancesCached(&m.vtc, &m.jc, vg-vs, vd-vs, vb-vs)
}

// BeginStep freezes the capacitance matrix at the last accepted solution.
func (m *MOSFET) BeginStep(ctx *Context) {
	vgs := ctx.Vprev(m.g) - ctx.Vprev(m.s)
	vds := ctx.Vprev(m.d) - ctx.Vprev(m.s)
	vbs := ctx.Vprev(m.b) - ctx.Vprev(m.s)
	m.caps = m.mos.CapacitancesCached(&m.vtc, &m.jc, vgs, vds, vbs)
}

// Stamp adds the linearized channel current and, in transient mode, the
// five capacitive branches.
func (m *MOSFET) Stamp(sys *System, ctx *Context) {
	vg, vd, vs, vb := ctx.V(m.g), ctx.V(m.d), ctx.V(m.s), ctx.V(m.b)
	vgs, vds, vbs := vg-vs, vd-vs, vb-vs
	var op device.OP
	if m.opValid && vgs == m.opVgs && vds == m.opVds && vbs == m.opVbs {
		op = m.op
	} else {
		op = m.mos.EvalCached(&m.vtc, vgs, vds, vbs)
		m.opVgs, m.opVds, m.opVbs, m.op, m.opValid = vgs, vds, vbs, op, true
	}

	id0 := op.Id
	gm, gds, gmb := op.Gm, op.Gds, op.Gmb
	gss := gm + gds + gmb // −∂Id/∂vs

	idIdx, igIdx, isIdx, ibIdx := unknownIndex(m.d), unknownIndex(m.g), unknownIndex(m.s), unknownIndex(m.b)

	// Current Id leaves the drain node into the device and enters at the
	// source node. Row d: +Id(x); row s: −Id(x).
	// Jacobian rows.
	sys.AddA(idIdx, igIdx, gm)
	sys.AddA(idIdx, idIdx, gds)
	sys.AddA(idIdx, ibIdx, gmb)
	sys.AddA(idIdx, isIdx, -gss)
	sys.AddA(isIdx, igIdx, -gm)
	sys.AddA(isIdx, idIdx, -gds)
	sys.AddA(isIdx, ibIdx, -gmb)
	sys.AddA(isIdx, isIdx, gss)
	// Residual linearization: b += J·x₀ − F(x₀).
	lin := gm*vgs + gds*vds + gmb*vbs
	sys.AddB(idIdx, lin-id0)
	sys.AddB(isIdx, -(lin - id0))

	if ctx.Mode == ModeTransient {
		m.cgs.Stamp(sys, ctx, m.g, m.s, m.caps.CGS)
		m.cgd.Stamp(sys, ctx, m.g, m.d, m.caps.CGD)
		m.cgb.Stamp(sys, ctx, m.g, m.b, m.caps.CGB)
		m.cdb.Stamp(sys, ctx, m.d, m.b, m.caps.CDB)
		m.csb.Stamp(sys, ctx, m.s, m.b, m.caps.CSB)
	}
}

// AcceptStep records the converged capacitor branch currents.
func (m *MOSFET) AcceptStep(ctx *Context) {
	m.cgs.Accept(ctx, m.g, m.s, m.caps.CGS)
	m.cgd.Accept(ctx, m.g, m.d, m.caps.CGD)
	m.cgb.Accept(ctx, m.g, m.b, m.caps.CGB)
	m.cdb.Accept(ctx, m.d, m.b, m.caps.CDB)
	m.csb.Accept(ctx, m.s, m.b, m.caps.CSB)
}
