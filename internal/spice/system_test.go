package spice

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	s := NewSystem(3)
	for i := 0; i < 3; i++ {
		s.AddA(i, i, 1)
		s.AddB(i, float64(i+1))
	}
	x, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-float64(i+1)) > 1e-12 {
			t.Errorf("x[%d] = %g", i, x[i])
		}
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row exchange.
	s := NewSystem(2)
	s.AddA(0, 1, 1)
	s.AddA(1, 0, 1)
	s.AddB(0, 3) // x1 = 3
	s.AddB(1, 5) // x0 = 5
	x, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	s := NewSystem(2)
	s.AddA(0, 0, 1)
	s.AddA(0, 1, 1)
	s.AddA(1, 0, 2)
	s.AddA(1, 1, 2)
	s.AddB(0, 1)
	if _, err := s.Solve(); err == nil {
		t.Error("singular system solved")
	}
}

func TestGroundIndexIgnored(t *testing.T) {
	s := NewSystem(2)
	s.AddA(-1, 0, 99)
	s.AddA(0, -1, 99)
	s.AddB(-1, 99)
	for _, v := range s.A {
		if v != 0 {
			t.Fatal("ground stamp leaked into matrix")
		}
	}
	for _, v := range s.B {
		if v != 0 {
			t.Fatal("ground stamp leaked into rhs")
		}
	}
}

func TestStampConductance(t *testing.T) {
	s := NewSystem(2)
	StampConductance(s, Node(1), Node(2), 0.5)
	if s.A[0] != 0.5 || s.A[3] != 0.5 || s.A[1] != -0.5 || s.A[2] != -0.5 {
		t.Errorf("conductance stamp: %v", s.A)
	}
	// Against ground only the diagonal survives.
	s2 := NewSystem(1)
	StampConductance(s2, Node(1), Ground, 2)
	if s2.A[0] != 2 {
		t.Errorf("ground conductance stamp: %v", s2.A)
	}
}

// Property: Solve returns x with A·x = b for random diagonally dominant
// systems (which are always nonsingular).
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed [16]float64) bool {
		const n = 4
		s := NewSystem(n)
		a := make([]float64, n*n)
		b := make([]float64, n)
		k := 0
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				v := math.Mod(seed[k%16], 1)
				if math.IsNaN(v) {
					v = 0.1
				}
				k++
				a[i*n+j] = v
				rowSum += math.Abs(v)
			}
			a[i*n+i] = rowSum + 1
			b[i] = math.Mod(seed[(k+3)%16], 10)
			if math.IsNaN(b[i]) {
				b[i] = 1
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s.AddA(i, j, a[i*n+j])
			}
			s.AddB(i, b[i])
		}
		x, err := s.Solve()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-9*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
