package spice

import (
	"errors"
	"math"
	"strings"
	"testing"

	"mcsm/internal/device"
	"mcsm/internal/wave"
)

// buildTestSystem fills an n×n diagonally dominant system with a
// deterministic pattern.
func buildTestSystem(n int) *System {
	s := NewSystem(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 1.0 / float64(i+j+1)
			if i == j {
				v += float64(n)
			}
			s.AddA(i, j, v)
		}
		s.AddB(i, float64(i+1))
	}
	return s
}

// TestSolveWithMatchesSolve pins the reuse contract: SolveWith through a
// shared workspace returns bit-identical results to the allocating Solve,
// and leaves the system's A/B intact (Solve historically destroyed them).
func TestSolveWithMatchesSolve(t *testing.T) {
	const n = 7
	ref, err := buildTestSystem(n).Solve()
	if err != nil {
		t.Fatal(err)
	}

	s := buildTestSystem(n)
	a0 := append([]float64(nil), s.A...)
	b0 := append([]float64(nil), s.B...)
	ws := NewSolveWorkspace(n)
	x, err := s.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if x[i] != ref[i] {
			t.Errorf("x[%d]: SolveWith %v != Solve %v (bit identity broken)", i, x[i], ref[i])
		}
	}
	for i := range a0 {
		if s.A[i] != a0[i] {
			t.Fatal("SolveWith mutated the system matrix")
		}
	}
	for i := range b0 {
		if s.B[i] != b0[i] {
			t.Fatal("SolveWith mutated the right-hand side")
		}
	}
}

// TestSolveWorkspaceResize reuses one workspace across systems of different
// sizes, in both growth directions.
func TestSolveWorkspaceResize(t *testing.T) {
	ws := NewSolveWorkspace(2)
	for _, n := range []int{2, 9, 4, 16, 3} {
		s := buildTestSystem(n)
		x, err := s.SolveWith(ws)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Residual check against the (intact) system.
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += s.A[i*n+j] * x[j]
			}
			if math.Abs(sum-s.B[i]) > 1e-9*(1+math.Abs(s.B[i])) {
				t.Fatalf("n=%d: residual %g at row %d", n, sum-s.B[i], i)
			}
		}
	}
}

// TestErrSingularSentinel pins the typed failure mode: singular systems
// wrap ErrSingular and carry the unknown count and worst-pivot location so
// a characterization failure points at the offending node.
func TestErrSingularSentinel(t *testing.T) {
	s := NewSystem(3)
	// Rows 0 and 2 proportional → exactly singular.
	for j := 0; j < 3; j++ {
		s.AddA(0, j, float64(j+1))
		s.AddA(1, j, float64(3-j))
		s.AddA(2, j, 2*float64(j+1))
	}
	s.AddB(0, 1)
	_, err := s.Solve()
	if err == nil {
		t.Fatal("singular system solved")
	}
	if !errors.Is(err, ErrSingular) {
		t.Errorf("error %v does not wrap ErrSingular", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "3 unknowns") || !strings.Contains(msg, "pivot") {
		t.Errorf("error %q missing unknown count or pivot context", msg)
	}

	// The workspace path reports the same sentinel.
	s2 := NewSystem(2)
	s2.AddA(0, 0, 1)
	s2.AddA(0, 1, 1)
	s2.AddA(1, 0, 2)
	s2.AddA(1, 1, 2)
	if _, err := s2.SolveWith(NewSolveWorkspace(2)); !errors.Is(err, ErrSingular) {
		t.Errorf("SolveWith: %v does not wrap ErrSingular", err)
	}
}

// TestSolveNonFiniteIsSingular covers the post-solve sanity check: a
// finite factorization that still produces a non-finite solution (NaN
// contamination in the right-hand side) reports ErrSingular too.
func TestSolveNonFiniteIsSingular(t *testing.T) {
	s := NewSystem(2)
	s.AddA(0, 0, 1)
	s.AddA(1, 1, 1)
	s.AddB(0, math.NaN())
	_, err := s.Solve()
	if err == nil {
		t.Fatal("NaN solution accepted")
	}
	if !errors.Is(err, ErrSingular) {
		t.Errorf("error %v does not wrap ErrSingular", err)
	}
}

// buildInverter returns a 130 nm inverter engine driven by a rising ramp.
func buildInverter(opt Options) (*Engine, Node) {
	np := device.N130()
	pp := device.P130()
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VDD", vdd, Ground, DC(1.2))
	c.AddVSource("VIN", in, Ground, wave.SaturatedRamp(0, 1.2, 0.5e-9, 80e-12, 3e-9))
	c.AddMOS("MN", out, in, Ground, Ground, &np, 0.2e-6)
	c.AddMOS("MP", out, in, vdd, vdd, &pp, 0.4e-6)
	c.AddCapacitor("CL", out, Ground, 5e-15)
	return NewEngine(c, opt), out
}

// TestJacobianLagMatchesExact is the solver-level accuracy contract of the
// fast path: chord Newton with lag 3 must land on the same waveform as the
// exact per-iteration factorization, because only the Jacobian is lagged —
// the converged residual is the same nonlinear KCL either way.
func TestJacobianLagMatchesExact(t *testing.T) {
	eExact, outE := buildInverter(DefaultOptions())
	exact, err := eExact.Run(0, 3e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	optLag := DefaultOptions()
	optLag.JacobianLag = 3
	eLag, outL := buildInverter(optLag)
	lagged, err := eLag.Run(0, 3e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	wE := exact.Wave(outE)
	wL := lagged.Wave(outL)
	tE, ok1 := wE.CrossTime(0.6, false, 0)
	tL, ok2 := wL.CrossTime(0.6, false, 0)
	if !ok1 || !ok2 {
		t.Fatal("missing output crossings")
	}
	if d := math.Abs(tE - tL); d > 0.5e-12 {
		t.Errorf("chord vs exact 50%% crossing differ by %.3fps", d*1e12)
	}
	if rmse := wave.RMSE(wE, wL, 0, 3e-9, 2000); rmse > 2e-3 {
		t.Errorf("chord vs exact RMSE %.4g V", rmse)
	}
}

// TestDCFromWarmStart covers the batched-characterization warm start: a
// seed near the solution converges to the same operating point, and a
// mis-sized seed silently falls back to the homotopy ladder.
func TestDCFromWarmStart(t *testing.T) {
	e, out := buildInverter(DefaultOptions())
	x, err := e.DCAt(0)
	if err != nil {
		t.Fatal(err)
	}
	ref := x[int(out)-1]
	seed := append([]float64(nil), x...)
	for i := range seed {
		seed[i] += 1e-3 // nudge off the solution
	}
	x2, err := e.DCFrom(seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(x2[int(out)-1] - ref); d > 1e-6 {
		t.Errorf("warm-started DC differs by %g V", d)
	}
	x3, err := e.DCFrom([]float64{1}, 0) // wrong size → DCAt fallback
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(x3[int(out)-1] - ref); d > 1e-9 {
		t.Errorf("fallback DC differs by %g V", d)
	}
}

// BenchmarkNewtonStepInverter measures the Newton inner loop proper —
// assemble, factorize, line search — on a converged inverter operating
// point nudged off equilibrium each iteration. CI asserts this reports
// 0 allocs/op: the whole point of the workspace refactor.
func BenchmarkNewtonStepInverter(b *testing.B) {
	e, out := buildInverter(DefaultOptions())
	x, err := e.DCAt(0)
	if err != nil {
		b.Fatal(err)
	}
	n := e.Unknowns()
	ctx := &Context{Mode: ModeDC, SrcScale: 1, X: make([]float64, n), Xprev: make([]float64, n)}
	base := append([]float64(nil), x...)
	oi := int(out) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ctx.X, base)
		ctx.X[oi] += 0.05
		if err := e.newton(ctx, e.opt.Gmin); err != nil {
			b.Fatal(err)
		}
	}
}
