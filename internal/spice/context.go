package spice

// Mode distinguishes DC operating-point assembly (capacitors open) from
// transient assembly (capacitors integrate).
type Mode int

// Analysis modes.
const (
	ModeDC Mode = iota
	ModeTransient
)

// Method selects the transient integration rule.
type Method int

// Integration methods.
const (
	// BackwardEuler is L-stable and maximally damped; used for the first
	// step after a DC solution and available for ablation studies.
	BackwardEuler Method = iota
	// Trapezoidal is second-order accurate; the default.
	Trapezoidal
)

// Context carries the solver state an element sees while stamping: the
// analysis mode, candidate solution X, the accepted previous-step solution
// Xprev, timing, and the source-stepping scale factor.
type Context struct {
	Mode     Mode
	Method   Method
	Time     float64 // end-of-step time being solved
	Dt       float64 // step size (transient only)
	X        []float64
	Xprev    []float64
	SrcScale float64 // 0..1 during DC source stepping, 1 otherwise
}

// V returns the candidate voltage of node n.
func (ctx *Context) V(n Node) float64 {
	if n == Ground {
		return 0
	}
	return ctx.X[int(n)-1]
}

// Vprev returns node n's voltage at the start of the step (the last
// accepted solution).
func (ctx *Context) Vprev(n Node) float64 {
	if n == Ground {
		return 0
	}
	return ctx.Xprev[int(n)-1]
}

// Aux returns the candidate value of auxiliary unknown i (absolute index).
func (ctx *Context) Aux(i int) float64 { return ctx.X[i] }

// AuxPrev returns the start-of-step value of auxiliary unknown i.
func (ctx *Context) AuxPrev(i int) float64 { return ctx.Xprev[i] }

// Element is anything that can stamp its linearized contribution into the
// MNA system at the candidate solution in ctx. The convention is
//
//	row i:  Σ (currents leaving node i into elements) = 0
//
// so a nonlinear element with current F(x) leaving node i stamps its
// Jacobian into A and (J·x₀ − F(x₀)) into b.
type Element interface {
	Name() string
	Stamp(sys *System, ctx *Context)
}

// AuxUser is implemented by elements that own auxiliary unknowns (branch
// currents, internal model nodes). The engine assigns a contiguous index
// range before analysis.
type AuxUser interface {
	AuxCount() int
	SetAuxBase(base int)
}

// Stepper is implemented by elements that keep per-step state (capacitor
// companion histories, per-step-frozen capacitance values). BeginStep is
// called once before the Newton loop of each transient step with Xprev set
// to the last accepted solution; AcceptStep after convergence.
type Stepper interface {
	BeginStep(ctx *Context)
	AcceptStep(ctx *Context)
}

// Initializer is implemented by elements that want to seed auxiliary
// unknowns with a better-than-zero starting guess before DC analysis.
type Initializer interface {
	InitGuess(x []float64)
}

// CapBranch integrates one two-terminal capacitive branch with the
// engine's companion models. The caller supplies the capacitance value for
// the current step (typically frozen at BeginStep for nonlinear
// capacitors); CapBranch keeps the trapezoidal current history.
type CapBranch struct {
	iPrev float64 // branch current at the last accepted step
}

// Stamp adds the branch's companion model between nodes a and b for the
// current step. In DC mode the branch is open and stamps nothing.
func (cb *CapBranch) Stamp(sys *System, ctx *Context, a, b Node, c float64) {
	if ctx.Mode == ModeDC || ctx.Dt <= 0 || c == 0 {
		return
	}
	vPrev := ctx.Vprev(a) - ctx.Vprev(b)
	var geq, ieqHist float64
	switch ctx.Method {
	case Trapezoidal:
		geq = 2 * c / ctx.Dt
		ieqHist = geq*vPrev + cb.iPrev
	default: // BackwardEuler
		geq = c / ctx.Dt
		ieqHist = geq * vPrev
	}
	// Branch current leaving a: i = geq·(va−vb) − ieqHist.
	StampConductance(sys, a, b, geq)
	ia, ib := unknownIndex(a), unknownIndex(b)
	sys.AddB(ia, ieqHist)
	sys.AddB(ib, -ieqHist)
}

// Accept records the converged branch current for the next step's
// trapezoidal history. It must be called from the element's AcceptStep with
// the same capacitance value used in Stamp.
func (cb *CapBranch) Accept(ctx *Context, a, b Node, c float64) {
	if ctx.Mode == ModeDC || ctx.Dt <= 0 || c == 0 {
		cb.iPrev = 0
		return
	}
	v := ctx.V(a) - ctx.V(b)
	vPrev := ctx.Vprev(a) - ctx.Vprev(b)
	switch ctx.Method {
	case Trapezoidal:
		cb.iPrev = 2*c/ctx.Dt*(v-vPrev) - cb.iPrev
	default:
		cb.iPrev = c / ctx.Dt * (v - vPrev)
	}
}

// Reset clears the branch history (used when a new transient run begins).
func (cb *CapBranch) Reset() { cb.iPrev = 0 }
