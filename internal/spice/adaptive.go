package spice

import (
	"fmt"
	"math"
)

// AdaptiveOptions controls ΔV-based adaptive time stepping: the step grows
// while node voltages move slowly and shrinks through fast transitions.
// This is the classic fast-SPICE control (cheaper than LTE estimation and
// effective for digital waveforms, which are quiet most of the time).
type AdaptiveOptions struct {
	DtMin    float64 // smallest allowed step
	DtMax    float64 // largest allowed step
	MaxDV    float64 // target maximum node-voltage change per step (default Vdd/20 ≈ 60 mV)
	GrowBy   float64 // step growth factor after quiet steps (default 1.4)
	ShrinkBy float64 // step reduction factor on violation (default 0.5)
	// DtInit seeds the very first step (clamped to [DtMin, DtMax]).
	// Zero keeps the historical default of DtMin·4. Characterization
	// callers set it from the previous grid point's accepted step history
	// so neighboring points skip the initial grow-from-minimum ramp.
	DtInit float64
}

// DefaultAdaptive returns the standard adaptive configuration for the
// nanosecond-scale digital waveforms of this repository.
func DefaultAdaptive() AdaptiveOptions {
	return AdaptiveOptions{
		DtMin:    0.05e-12,
		DtMax:    20e-12,
		MaxDV:    0.06,
		GrowBy:   1.4,
		ShrinkBy: 0.5,
	}
}

// RunAdaptive performs a transient analysis with adaptive step control,
// starting from a DC solve at start. A step whose largest node-voltage
// change exceeds MaxDV is rejected and retried at a smaller dt; quiet steps
// let dt grow toward DtMax. Results are recorded at the accepted (non-
// uniform) time points.
func (e *Engine) RunAdaptive(start, stop float64, opt AdaptiveOptions) (*Result, error) {
	x0, err := e.DCAt(start)
	if err != nil {
		return nil, err
	}
	return e.RunAdaptiveFrom(x0, start, stop, opt)
}

// RunAdaptiveFrom is RunAdaptive with a caller-supplied initial state.
func (e *Engine) RunAdaptiveFrom(x0 []float64, start, stop float64, opt AdaptiveOptions) (*Result, error) {
	if opt.DtMin <= 0 || opt.DtMax < opt.DtMin || stop <= start {
		return nil, fmt.Errorf("spice: invalid adaptive window/steps")
	}
	if opt.MaxDV <= 0 {
		opt.MaxDV = 0.06
	}
	if opt.GrowBy <= 1 {
		opt.GrowBy = 1.4
	}
	if opt.ShrinkBy <= 0 || opt.ShrinkBy >= 1 {
		opt.ShrinkBy = 0.5
	}
	n := e.Unknowns()
	if len(x0) != n {
		return nil, fmt.Errorf("spice: initial state has %d unknowns, want %d", len(x0), n)
	}

	res := newResult(e.ckt, n)
	x := make([]float64, n)
	xprev := make([]float64, n)
	copy(x, x0)
	copy(xprev, x0)
	ctx := &Context{Mode: ModeTransient, SrcScale: 1, X: x, Xprev: xprev}

	for _, el := range e.ckt.Elements() {
		if st, ok := el.(Stepper); ok {
			resetBranches(st)
		}
	}

	res.record(start, x0)
	t := start
	dt := opt.DtInit
	if dt <= 0 {
		dt = opt.DtMin * 4
	}
	if dt < opt.DtMin {
		dt = opt.DtMin
	}
	if dt > opt.DtMax {
		dt = opt.DtMax
	}
	firstStep := true
	for t < stop-opt.DtMin/2 {
		if t+dt > stop {
			dt = stop - t
		}
		accepted := false
		for attempt := 0; attempt < 40 && !accepted; attempt++ {
			ctx.Time = t + dt
			ctx.Dt = dt
			if firstStep {
				ctx.Method = BackwardEuler
			} else {
				ctx.Method = e.opt.Method
			}
			copy(ctx.X, ctx.Xprev)
			for _, st := range e.steppers {
				st.BeginStep(ctx)
			}
			err := e.newton(ctx, e.opt.Gmin)
			if err == nil {
				// Check the ΔV criterion on node voltages.
				maxDV := 0.0
				for i := 0; i < e.nNodes; i++ {
					if d := math.Abs(ctx.X[i] - ctx.Xprev[i]); d > maxDV {
						maxDV = d
					}
				}
				if maxDV <= opt.MaxDV || dt <= opt.DtMin*1.0000001 {
					accepted = true
					break
				}
			}
			// Reject: shrink and retry (also the Newton-failure path).
			dt *= opt.ShrinkBy
			if dt < opt.DtMin {
				dt = opt.DtMin
			}
			if err != nil && dt <= opt.DtMin*1.0000001 {
				// Last resort at the minimum step: try backward Euler.
				ctx.Method = BackwardEuler
				copy(ctx.X, ctx.Xprev)
				for _, st := range e.steppers {
					st.BeginStep(ctx)
				}
				if err2 := e.newton(ctx, e.opt.Gmin); err2 != nil {
					return res, fmt.Errorf("spice: adaptive step at t=%g failed: %w", ctx.Time, err2)
				}
				accepted = true
			}
		}
		if !accepted {
			return res, fmt.Errorf("spice: adaptive step at t=%g not accepted", t)
		}
		for _, st := range e.steppers {
			st.AcceptStep(ctx)
		}
		copy(ctx.Xprev, ctx.X)
		t = ctx.Time
		res.record(t, ctx.X)
		firstStep = false
		// Grow gently after an accepted step.
		dt *= opt.GrowBy
		if dt > opt.DtMax {
			dt = opt.DtMax
		}
	}
	return res, nil
}
