package spice

import (
	"fmt"

	"mcsm/internal/wave"
)

// Result holds the sampled solution of a transient run: every node voltage
// and every auxiliary unknown at every accepted time point.
type Result struct {
	ckt    *Circuit
	Times  []float64
	values [][]float64 // values[k] is the unknown vector at Times[k]
	arena  []float64   // chunked backing store the rows of values slice into
}

func newResult(c *Circuit, n int) *Result {
	return &Result{ckt: c}
}

// record appends a snapshot of x. Rows are carved out of a chunked arena
// (64 steps per chunk) so a transient run costs O(steps/64) allocations
// instead of one per step; rows never move once handed out, so retained
// sub-slices in values stay valid as the arena advances.
func (r *Result) record(t float64, x []float64) {
	if len(x) > 0 {
		if len(r.arena) < len(x) {
			r.arena = make([]float64, 64*len(x))
		}
		cp := r.arena[:len(x):len(x)]
		r.arena = r.arena[len(x):]
		copy(cp, x)
		r.values = append(r.values, cp)
	} else {
		r.values = append(r.values, nil)
	}
	r.Times = append(r.Times, t)
}

// Steps returns the number of recorded time points.
func (r *Result) Steps() int { return len(r.Times) }

// At returns unknown i at step k.
func (r *Result) At(k, i int) float64 { return r.values[k][i] }

// Wave returns the voltage waveform of a node.
func (r *Result) Wave(n Node) wave.Waveform {
	v := make([]float64, len(r.Times))
	if n != Ground {
		idx := int(n) - 1
		for k := range r.Times {
			v[k] = r.values[k][idx]
		}
	}
	t := make([]float64, len(r.Times))
	copy(t, r.Times)
	return wave.Waveform{T: t, V: v}
}

// WaveByName returns the voltage waveform of the named node.
func (r *Result) WaveByName(name string) (wave.Waveform, error) {
	i, ok := r.lookupNode(name)
	if !ok {
		return wave.Waveform{}, fmt.Errorf("spice: unknown node %q", name)
	}
	return r.Wave(Node(i)), nil
}

func (r *Result) lookupNode(name string) (int, bool) {
	i, ok := r.ckt.byName[name]
	return i, ok
}

// AuxWave returns the waveform of an absolute auxiliary unknown index.
// For a VSource v, use v.AuxIndex(); the value is the current flowing from
// the positive terminal through the source (i.e. delivered into the source
// by the circuit).
func (r *Result) AuxWave(idx int) wave.Waveform {
	t := make([]float64, len(r.Times))
	copy(t, r.Times)
	v := make([]float64, len(r.Times))
	for k := range r.Times {
		v[k] = r.values[k][idx]
	}
	return wave.Waveform{T: t, V: v}
}

// AuxWavePooled is AuxWave with the sample slices drawn from the wave
// package's free-list pool. The caller owns the returned waveform and must
// hand it back with wave.Release once done measuring — after that the
// samples may be overwritten by an unrelated waveform. Use it only in
// tight characterization loops that fully consume the waveform before the
// next solve; anything retained beyond the loop should use AuxWave.
func (r *Result) AuxWavePooled(idx int) wave.Waveform {
	t := wave.GetSamples(len(r.Times))
	copy(t, r.Times)
	v := wave.GetSamples(len(r.Times))
	for k := range r.Times {
		v[k] = r.values[k][idx]
	}
	return wave.Waveform{T: t, V: v}
}

// Current returns the branch-current waveform of the named voltage source.
func (r *Result) Current(vsrcName string) (wave.Waveform, error) {
	for _, el := range r.ckt.Elements() {
		if v, ok := el.(*VSource); ok && v.Name() == vsrcName {
			return r.AuxWave(v.AuxIndex()), nil
		}
	}
	return wave.Waveform{}, fmt.Errorf("spice: no voltage source named %q", vsrcName)
}

// Final returns a copy of the last recorded unknown vector, usable as the
// initial state of a follow-on RunFrom.
func (r *Result) Final() []float64 {
	last := r.values[len(r.values)-1]
	cp := make([]float64, len(last))
	copy(cp, last)
	return cp
}

// SupplyEnergy integrates the energy delivered by the named voltage source
// over [t0, t1]: E = ∫ V·(−I) dt, with I the branch current into the
// source (so a delivering supply has negative I and positive energy).
func (r *Result) SupplyEnergy(vsrcName string, t0, t1 float64) (float64, error) {
	for _, el := range r.ckt.Elements() {
		v, ok := el.(*VSource)
		if !ok || v.Name() != vsrcName {
			continue
		}
		iw := r.AuxWave(v.AuxIndex())
		var e float64
		for k := 1; k < len(iw.T); k++ {
			tm := 0.5 * (iw.T[k] + iw.T[k-1])
			if tm < t0 || tm > t1 {
				continue
			}
			im := 0.5 * (iw.V[k] + iw.V[k-1])
			e += -v.Value(tm) * im * (iw.T[k] - iw.T[k-1])
		}
		return e, nil
	}
	return 0, fmt.Errorf("spice: no voltage source named %q", vsrcName)
}
