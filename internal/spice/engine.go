package spice

import (
	"fmt"
	"math"
	"os"
)

// Options configures the solver.
type Options struct {
	// Gmin is the minimum conductance tied from every node to ground; it
	// keeps floating nodes (e.g. a cutoff stack node) non-singular. The
	// resulting leak (≈1 ms time constant against fF nodes) is far outside
	// the nanosecond windows simulated here.
	Gmin float64
	// AbsTol/RelTol terminate Newton when every unknown moves less than
	// AbsTol + RelTol·|x|.
	AbsTol float64
	RelTol float64
	// MaxIter bounds Newton iterations per solve.
	MaxIter int
	// MaxStepV limits the per-iteration update magnitude on voltage
	// unknowns (classic damping for MOS exponentials).
	MaxStepV float64
	// Method selects the transient integration rule (default Trapezoidal;
	// the first step after DC always uses backward Euler to damp the
	// trapezoidal start-up ringing).
	Method Method
	// JacobianLag enables chord (lagged-Jacobian) Newton: after a fresh
	// factorization, up to JacobianLag subsequent iterations reuse the LU
	// factors and only reassemble the right-hand side, refactorizing as
	// soon as the residual stops contracting (or the step goes
	// non-finite). 0 — the default — factorizes every iteration and is the
	// golden-pinned exact path.
	JacobianLag int
}

// chordContraction is the fallback rule of chord mode: a lagged-Jacobian
// iteration is only allowed while the previous iteration shrank the
// residual to below this fraction of its predecessor's; otherwise the
// factors are stale and Newton refactorizes.
const chordContraction = 0.9

// DefaultOptions returns the solver configuration used throughout the
// repository.
func DefaultOptions() Options {
	return Options{
		Gmin:     1e-12,
		AbsTol:   1e-9,
		RelTol:   1e-6,
		MaxIter:  150,
		MaxStepV: 0.3,
		Method:   Trapezoidal,
	}
}

// Engine binds a circuit to solver options and preassigned unknown indices.
type Engine struct {
	ckt      *Circuit
	opt      Options
	nNodes   int // excluding ground
	nAux     int
	steppers []Stepper

	// Per-engine Newton workspace: two assembly targets (swapped by the
	// line-search assembly-reuse optimization), the linear-solver scratch,
	// and the step vectors. Everything is reused across all solves so the
	// inner loop allocates nothing. An Engine is therefore not safe for
	// concurrent use — it never was: element histories already serialize
	// it.
	sysA, sysB *System
	solver     *SolveWorkspace
	x0, dir    []float64
	xChord     []float64

	// Chord-Newton (Options.JacobianLag) state, reset per newton call.
	chordAge int
	fPrev    float64
}

// NewEngine prepares a circuit for analysis, assigning auxiliary unknown
// indices. The circuit must not gain elements afterwards.
func NewEngine(c *Circuit, opt Options) *Engine {
	e := &Engine{ckt: c, opt: opt, nNodes: c.NumNodes() - 1}
	base := e.nNodes
	for _, el := range c.Elements() {
		if au, ok := el.(AuxUser); ok {
			au.SetAuxBase(base)
			base += au.AuxCount()
		}
		if st, ok := el.(Stepper); ok {
			e.steppers = append(e.steppers, st)
		}
	}
	e.nAux = base - e.nNodes
	n := e.Unknowns()
	e.sysA = NewSystem(n)
	e.sysB = NewSystem(n)
	e.solver = NewSolveWorkspace(n)
	e.x0 = make([]float64, n)
	e.dir = make([]float64, n)
	e.xChord = make([]float64, n)
	return e
}

// Unknowns returns the total unknown count (node voltages + auxiliaries).
func (e *Engine) Unknowns() int { return e.nNodes + e.nAux }

// assemble stamps the full linearized system at ctx.X into sys.
func (e *Engine) assemble(sys *System, ctx *Context, gmin float64) {
	sys.Clear()
	for i := 0; i < e.nNodes; i++ {
		sys.AddA(i, i, gmin)
	}
	for _, el := range e.ckt.Elements() {
		el.Stamp(sys, ctx)
	}
}

// residualNorm returns ‖J·x − b‖₂ for a freshly assembled system. Because
// elements stamp b += J·x₀ − F(x₀), this equals ‖F(x₀)‖: the true nonlinear
// KCL residual at the assembly point.
func residualNorm(sys *System, x []float64) float64 {
	n := sys.N
	var sum float64
	for i := 0; i < n; i++ {
		r := -sys.B[i]
		arow := sys.A[i*n : i*n+n : i*n+n]
		for j, v := range arow {
			r += v * x[j]
		}
		sum += r * r
	}
	return math.Sqrt(sum)
}

// chordStep computes x − J₀⁻¹·F(x) against the solver workspace's retained
// LU factors, where F(x)_i = Σⱼ A_ij·x_j − b_i is the exact nonlinear
// residual of the freshly assembled system — only the Jacobian is lagged,
// never the right-hand side. It returns nil when the result is non-finite,
// in which case the caller falls back to a fresh factorization.
func (e *Engine) chordStep(sys *System, x []float64) []float64 {
	ws := e.solver
	n := sys.N
	for i := 0; i < n; i++ {
		sum := -sys.B[i]
		arow := sys.A[i*n : i*n+n : i*n+n]
		for j, v := range arow {
			sum += v * x[j]
		}
		ws.r[i] = sum
	}
	ws.fact.solveInto(ws.r, ws.d)
	out := e.xChord
	for i := 0; i < n; i++ {
		out[i] = x[i] - ws.d[i]
		if math.IsNaN(out[i]) || math.IsInf(out[i], 0) {
			return nil
		}
	}
	return out
}

// newton iterates to convergence at the context's time/mode, starting from
// ctx.X, with the extra gmin added on node diagonals. On success ctx.X
// holds the solution.
//
// The iteration is globalized two ways: the proposed update is first scaled
// so no node voltage moves more than MaxStepV, and then a backtracking line
// search on the nonlinear residual norm rejects steps that do not make
// progress — this is what tames the subthreshold-exponential oscillations
// of floating stacked nodes (e.g. a NOR3 with all inputs high).
//
// Two reuse mechanisms keep the loop cheap. First — always on, and exact:
// when the line search accepts its last-assembled trial point, the
// accepted ctx.X recomputes to bit-identical values, so the trial system
// and its residual carry over to the next iteration (one full
// assemble+residualNorm saved; Stamp is deterministic and stateless within
// a step, so the carried system equals what reassembly would produce).
// Second — opt-in via Options.JacobianLag: chord iterations reuse the LU
// factors while the residual contracts (see chordStep).
func (e *Engine) newton(ctx *Context, gmin float64) error {
	n := e.Unknowns()
	sysA, sysB := e.sysA, e.sysB
	x0, dir := e.x0, e.dir
	lag := e.opt.JacobianLag
	e.chordAge = 0
	e.fPrev = math.Inf(1)
	haveAssembly := false
	var f0 float64
	for iter := 0; iter < e.opt.MaxIter; iter++ {
		if !haveAssembly {
			e.assemble(sysA, ctx, gmin)
			f0 = residualNorm(sysA, ctx.X)
		}
		haveAssembly = false
		var xNew []float64
		chord := lag > 0 && iter > 0 && e.chordAge < lag && f0 < e.fPrev*chordContraction
		if chord {
			xNew = e.chordStep(sysA, ctx.X)
			if xNew == nil {
				chord = false // non-finite chord step: refactorize fresh
			}
		}
		if chord {
			e.chordAge++
		} else {
			var err error
			xNew, err = sysA.SolveWith(e.solver)
			if err != nil {
				return fmt.Errorf("spice: %w at t=%g iter=%d", err, ctx.Time, iter)
			}
			e.chordAge = 0
		}
		e.fPrev = f0
		copy(x0, ctx.X)
		maxMove := 0.0
		for i := 0; i < n; i++ {
			dir[i] = xNew[i] - x0[i]
			if i < e.nNodes {
				if d := math.Abs(dir[i]); d > maxMove {
					maxMove = d
				}
			}
		}
		scale := 1.0
		if maxMove > e.opt.MaxStepV {
			scale = e.opt.MaxStepV / maxMove
		}
		// If the full Newton step is already within tolerance the iteration
		// has converged; accept it outright. (Checking before the line
		// search matters: at the numerical residual floor the search cannot
		// measure improvement and would otherwise never terminate.)
		if scale == 1.0 {
			converged := true
			for i := 0; i < n; i++ {
				tol := e.opt.AbsTol + e.opt.RelTol*math.Abs(xNew[i])
				if math.Abs(dir[i]) > tol {
					converged = false
					break
				}
			}
			if converged {
				copy(ctx.X, xNew)
				return nil
			}
		}
		// Backtracking line search: accept the first scale that reduces the
		// residual; fall back to the best seen so the iteration keeps
		// moving even on shallow landscapes.
		bestScale, bestF := scale, math.Inf(1)
		s := scale
		sLast, fLast := math.NaN(), math.Inf(1)
		for k := 0; k < 8; k++ {
			for i := 0; i < n; i++ {
				ctx.X[i] = x0[i] + s*dir[i]
			}
			e.assemble(sysB, ctx, gmin)
			f1 := residualNorm(sysB, ctx.X)
			sLast, fLast = s, f1
			if f1 < bestF {
				bestF, bestScale = f1, s
			}
			if f1 <= f0*0.999+1e-18 {
				break
			}
			s /= 2
		}
		for i := 0; i < n; i++ {
			ctx.X[i] = x0[i] + bestScale*dir[i]
		}
		if bestScale == sLast {
			// The accepted point recomputes bit-identically to the last
			// trial, so sysB already holds next iteration's assembly and
			// fLast its residual.
			sysA, sysB = sysB, sysA
			f0 = fLast
			haveAssembly = true
		}
		if debugNewton && iter > e.opt.MaxIter-5 {
			fmt.Printf("newton iter=%d scale=%.3g f0=%.3g best=%.3g x=%v\n", iter, bestScale, f0, bestF, ctx.X)
		}
	}
	return fmt.Errorf("spice: newton did not converge at t=%g after %d iterations", ctx.Time, e.opt.MaxIter)
}

// DCAt computes the operating point with sources evaluated at time t.
// It first attempts a direct Newton solve, then gmin stepping, then source
// stepping. The returned slice is the full unknown vector.
func (e *Engine) DCAt(t float64) ([]float64, error) {
	n := e.Unknowns()
	x := make([]float64, n)
	for _, el := range e.ckt.Elements() {
		if ini, ok := el.(Initializer); ok {
			ini.InitGuess(x)
		}
	}
	ctx := &Context{Mode: ModeDC, Time: t, SrcScale: 1, X: x, Xprev: make([]float64, n)}

	if err := e.newton(ctx, e.opt.Gmin); err == nil {
		return ctx.X, nil
	}

	// Gmin stepping: solve with a large parallel conductance, then relax it
	// decade by decade, warm-starting each solve.
	for i := range ctx.X {
		ctx.X[i] = 0
	}
	ok := true
	for gmin := 1e-3; ; gmin /= 10 {
		if gmin < e.opt.Gmin {
			gmin = e.opt.Gmin
		}
		if err := e.newton(ctx, gmin); err != nil {
			ok = false
			break
		}
		if gmin == e.opt.Gmin {
			break
		}
	}
	if ok {
		return ctx.X, nil
	}

	// Source stepping: ramp all sources from zero.
	for i := range ctx.X {
		ctx.X[i] = 0
	}
	const steps = 25
	for k := 1; k <= steps; k++ {
		ctx.SrcScale = float64(k) / steps
		if err := e.newton(ctx, e.opt.Gmin); err != nil {
			return nil, fmt.Errorf("spice: DC failed at source scale %.2f: %w", ctx.SrcScale, err)
		}
	}
	return ctx.X, nil
}

// DCFrom computes the operating point at time t with Newton warm-started
// from the supplied unknown vector — typically the previous grid point's
// solution during batched characterization, where neighboring operating
// points differ by one small sweep increment. On any failure (or a
// mis-sized seed) it falls back to the full DCAt homotopy ladder.
func (e *Engine) DCFrom(seed []float64, t float64) ([]float64, error) {
	n := e.Unknowns()
	if len(seed) != n {
		return e.DCAt(t)
	}
	x := make([]float64, n)
	copy(x, seed)
	ctx := &Context{Mode: ModeDC, Time: t, SrcScale: 1, X: x, Xprev: make([]float64, n)}
	if err := e.newton(ctx, e.opt.Gmin); err == nil {
		return ctx.X, nil
	}
	return e.DCAt(t)
}

// Run performs a transient analysis from start to stop with fixed step dt,
// computing the initial condition from a DC solve at start. All node
// voltages and auxiliary unknowns are recorded every step.
func (e *Engine) Run(start, stop, dt float64) (*Result, error) {
	x0, err := e.DCAt(start)
	if err != nil {
		return nil, err
	}
	return e.RunFrom(x0, start, stop, dt)
}

// RunFrom performs a transient analysis starting from the supplied unknown
// vector (typically a previous DC or transient solution).
func (e *Engine) RunFrom(x0 []float64, start, stop, dt float64) (*Result, error) {
	if dt <= 0 || stop <= start {
		return nil, fmt.Errorf("spice: invalid transient window [%g,%g] dt=%g", start, stop, dt)
	}
	n := e.Unknowns()
	if len(x0) != n {
		return nil, fmt.Errorf("spice: initial state has %d unknowns, want %d", len(x0), n)
	}
	res := newResult(e.ckt, n)

	x := make([]float64, n)
	xprev := make([]float64, n)
	copy(x, x0)
	copy(xprev, x0)
	ctx := &Context{Mode: ModeTransient, Method: e.opt.Method, SrcScale: 1, X: x, Xprev: xprev}

	// Reset all capacitor histories for a fresh run.
	for _, el := range e.ckt.Elements() {
		if st, ok := el.(Stepper); ok {
			resetBranches(st)
		}
	}

	res.record(start, x0)
	nSteps := int(math.Ceil((stop - start) / dt))
	for k := 1; k <= nSteps; k++ {
		tEnd := start + float64(k)*dt
		if tEnd > stop {
			tEnd = stop
		}
		ctx.Time = tEnd
		ctx.Dt = tEnd - (start + float64(k-1)*dt)
		// Guard against a floating-point sliver of a final step: a Dt of
		// ~1e-24 s turns capacitor companions into ~1e9 S conductances and
		// destroys the system conditioning.
		if ctx.Dt <= dt*1e-6 {
			break
		}
		// First step after DC uses backward Euler to avoid trapezoidal
		// start-up oscillation from inconsistent initial cap currents.
		if k == 1 {
			ctx.Method = BackwardEuler
		} else {
			ctx.Method = e.opt.Method
		}
		for _, st := range e.steppers {
			st.BeginStep(ctx)
		}
		if err := e.newton(ctx, e.opt.Gmin); err != nil {
			if ctx.Method != Trapezoidal {
				return res, fmt.Errorf("spice: transient step %d failed: %w", k, err)
			}
			// Trapezoidal's undamped mode can ring against per-step
			// re-frozen nonlinear capacitances; retry the step with the
			// L-stable backward Euler rule (the classic SPICE fallback).
			copy(ctx.X, ctx.Xprev)
			ctx.Method = BackwardEuler
			for _, st := range e.steppers {
				st.BeginStep(ctx)
			}
			if err2 := e.newton(ctx, e.opt.Gmin); err2 != nil {
				return res, fmt.Errorf("spice: transient step %d failed (BE retry): %w", k, err2)
			}
		}
		for _, st := range e.steppers {
			st.AcceptStep(ctx)
		}
		copy(ctx.Xprev, ctx.X)
		res.record(tEnd, ctx.X)
	}
	return res, nil
}

// resetBranches clears capacitor history on elements that expose it.
func resetBranches(st Stepper) {
	type resetter interface{ ResetState() }
	if r, ok := st.(resetter); ok {
		r.ResetState()
		return
	}
	switch el := st.(type) {
	case *Capacitor:
		el.branch.Reset()
	case *MOSFET:
		el.cgs.Reset()
		el.cgd.Reset()
		el.cgb.Reset()
		el.cdb.Reset()
		el.csb.Reset()
	}
}

// debugNewton enables iteration tracing for development; controlled by the
// MCSM_DEBUG_NEWTON environment variable.
var debugNewton = os.Getenv("MCSM_DEBUG_NEWTON") != ""
