package spice

import (
	"math"
	"testing"

	"mcsm/internal/device"
	"mcsm/internal/wave"
)

func TestDCVoltageDivider(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	mid := c.Node("mid")
	c.AddVSource("V1", in, Ground, DC(2.0))
	c.AddResistor("R1", in, mid, 1e3)
	c.AddResistor("R2", mid, Ground, 3e3)
	e := NewEngine(c, DefaultOptions())
	x, err := e.DCAt(0)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance accounts for the deliberate gmin leak (1e-12 S) against the
	// kilo-ohm divider.
	if got := x[int(mid)-1]; math.Abs(got-1.5) > 1e-7 {
		t.Errorf("divider mid = %g, want 1.5", got)
	}
	// Source current: 2V across 4k = 0.5mA delivered by the source, so the
	// current flowing into the source at its positive terminal is −0.5mA.
	if got := x[e.nNodes]; math.Abs(got+0.5e-3) > 1e-9 {
		t.Errorf("source current = %g, want -0.5e-3", got)
	}
}

func TestTransientRCCharge(t *testing.T) {
	// Series R into C driven by a step; compare against the analytic
	// exponential. R=1k, C=1pF, tau=1ns.
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("V1", in, Ground, wave.SaturatedRamp(0, 1, 1e-12, 1e-12, 20e-9))
	c.AddResistor("R", in, out, 1e3)
	c.AddCapacitor("C", out, Ground, 1e-12)
	e := NewEngine(c, DefaultOptions())
	res, err := e.Run(0, 10e-9, 5e-12)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wave(out)
	tau := 1e-9
	for _, tt := range []float64{1e-9, 2e-9, 5e-9} {
		want := 1 - math.Exp(-(tt-2e-12)/tau)
		got := w.At(tt)
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("RC at %g: got %g want %g", tt, got, want)
		}
	}
	// Fully charged at the end.
	if got := w.At(10e-9); math.Abs(got-1) > 1e-3 {
		t.Errorf("final value %g", got)
	}
}

func TestTrapezoidalBeatsBackwardEuler(t *testing.T) {
	run := func(method Method) float64 {
		c := NewCircuit()
		in := c.Node("in")
		out := c.Node("out")
		c.AddVSource("V1", in, Ground, wave.SaturatedRamp(0, 1, 1e-12, 1e-12, 20e-9))
		c.AddResistor("R", in, out, 1e3)
		c.AddCapacitor("C", out, Ground, 1e-12)
		opt := DefaultOptions()
		opt.Method = method
		e := NewEngine(c, opt)
		res, err := e.Run(0, 5e-9, 50e-12)
		if err != nil {
			t.Fatal(err)
		}
		w := res.Wave(out)
		// Max error against analytic solution.
		maxErr := 0.0
		for _, tt := range []float64{0.5e-9, 1e-9, 1.5e-9, 2e-9, 3e-9} {
			want := 1 - math.Exp(-(tt-2e-12)/1e-9)
			if d := math.Abs(w.At(tt) - want); d > maxErr {
				maxErr = d
			}
		}
		return maxErr
	}
	be := run(BackwardEuler)
	tr := run(Trapezoidal)
	if tr >= be {
		t.Errorf("trapezoidal error %g not better than BE %g", tr, be)
	}
}

func TestVSourceCurrentMeasurement(t *testing.T) {
	// A 1V source across 1k: branch current should be −1mA (current enters
	// the source at the positive terminal from the resistor... the source
	// delivers +1mA out of its positive terminal, so the current flowing
	// p→n *through the source* is −1mA).
	c := NewCircuit()
	p := c.Node("p")
	v := c.AddVSource("V1", p, Ground, DC(1))
	c.AddResistor("R", p, Ground, 1e3)
	e := NewEngine(c, DefaultOptions())
	res, err := e.Run(0, 1e-9, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	iw, err := res.Current("V1")
	if err != nil {
		t.Fatal(err)
	}
	if got := iw.At(0.5e-9); math.Abs(got+1e-3) > 1e-9 {
		t.Errorf("source current = %g, want -1mA", got)
	}
	if _, err := res.Current("nope"); err == nil {
		t.Error("unknown source accepted")
	}
	_ = v
}

func TestISourceIntoCap(t *testing.T) {
	// 1µA into 1pF: dV/dt = 1V/µs → 1mV after 1ns.
	c := NewCircuit()
	out := c.Node("out")
	c.AddISource("I1", Ground, out, DC(1e-6))
	c.AddCapacitor("C", out, Ground, 1e-12)
	e := NewEngine(c, DefaultOptions())
	// Start from a zero initial condition (an uncharged capacitor); the DC
	// solution of this circuit is unbounded by construction.
	x0 := make([]float64, e.Unknowns())
	res, err := e.RunFrom(x0, 0, 1e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Wave(out).At(1e-9)
	if math.Abs(got-1e-3) > 1e-5 {
		t.Errorf("cap ramp = %g, want 1mV", got)
	}
}

func TestInverterDCTransfer(t *testing.T) {
	np := device.N130()
	pp := device.P130()
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VDD", vdd, Ground, DC(1.2))
	vin := c.AddVSource("VIN", in, Ground, DC(0))
	c.AddMOS("MN", out, in, Ground, Ground, &np, 0.2e-6)
	c.AddMOS("MP", out, in, vdd, vdd, &pp, 0.4e-6)
	e := NewEngine(c, DefaultOptions())
	_ = vin

	// Sweep input via fresh engines (stimulus is fixed); check monotone
	// falling transfer characteristic with full rails.
	prev := math.Inf(1)
	for _, vi := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2} {
		c2 := NewCircuit()
		vdd2 := c2.Node("vdd")
		in2 := c2.Node("in")
		out2 := c2.Node("out")
		c2.AddVSource("VDD", vdd2, Ground, DC(1.2))
		c2.AddVSource("VIN", in2, Ground, DC(vi))
		c2.AddMOS("MN", out2, in2, Ground, Ground, &np, 0.2e-6)
		c2.AddMOS("MP", out2, in2, vdd2, vdd2, &pp, 0.4e-6)
		e2 := NewEngine(c2, DefaultOptions())
		x, err := e2.DCAt(0)
		if err != nil {
			t.Fatalf("DC at vin=%g: %v", vi, err)
		}
		vo := x[int(out2)-1]
		if vo > prev+1e-6 {
			t.Errorf("transfer not monotone at vin=%g: %g after %g", vi, vo, prev)
		}
		prev = vo
		if vi == 0 && vo < 1.15 {
			t.Errorf("output at vin=0: %g, want ≈1.2", vo)
		}
		if vi == 1.2 && vo > 0.05 {
			t.Errorf("output at vin=1.2: %g, want ≈0", vo)
		}
	}
	_ = e
}

func TestInverterTransient(t *testing.T) {
	np := device.N130()
	pp := device.P130()
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VDD", vdd, Ground, DC(1.2))
	c.AddVSource("VIN", in, Ground, wave.SaturatedRamp(0, 1.2, 0.5e-9, 80e-12, 3e-9))
	c.AddMOS("MN", out, in, Ground, Ground, &np, 0.2e-6)
	c.AddMOS("MP", out, in, vdd, vdd, &pp, 0.4e-6)
	c.AddCapacitor("CL", out, Ground, 5e-15)
	e := NewEngine(c, DefaultOptions())
	res, err := e.Run(0, 3e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wave(out)
	if got := w.At(0.3e-9); got < 1.1 {
		t.Errorf("output before switch = %g, want high", got)
	}
	if got := w.At(2.5e-9); got > 0.1 {
		t.Errorf("output after switch = %g, want low", got)
	}
	// 50% delay is positive and sub-200ps for this light load.
	d, err := wave.Delay50(res.Wave(in), w, 1.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 200e-12 {
		t.Errorf("inverter delay = %g", d)
	}
}

func TestRunValidation(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddResistor("R", n, Ground, 1e3)
	e := NewEngine(c, DefaultOptions())
	if _, err := e.Run(0, -1e-9, 1e-12); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := e.Run(0, 1e-9, 0); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := e.RunFrom([]float64{1, 2, 3}, 0, 1e-9, 1e-12); err == nil {
		t.Error("wrong-size initial state accepted")
	}
}

func TestNodeNames(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	a2 := c.Node("a")
	if a != a2 {
		t.Error("node lookup not idempotent")
	}
	if c.NodeName(a) != "a" || c.NodeName(Ground) != "0" {
		t.Error("node names wrong")
	}
	if c.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
	if got := c.NodeName(Node(99)); got != "node#99" {
		t.Errorf("out-of-range name = %q", got)
	}
}

func TestResultHelpers(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddVSource("V", n, Ground, DC(1))
	e := NewEngine(c, DefaultOptions())
	res, err := e.Run(0, 1e-9, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps() < 10 {
		t.Errorf("steps = %d", res.Steps())
	}
	w, err := res.WaveByName("n")
	if err != nil || math.Abs(w.At(0.5e-9)-1) > 1e-9 {
		t.Errorf("WaveByName: %v %v", w, err)
	}
	if _, err := res.WaveByName("zzz"); err == nil {
		t.Error("unknown node accepted")
	}
	fin := res.Final()
	if len(fin) != e.Unknowns() {
		t.Errorf("Final len = %d", len(fin))
	}
	if g := res.Wave(Ground); g.V[0] != 0 {
		t.Error("ground wave not zero")
	}
}
