package spice

import (
	"errors"
	"math"
)

// System is the dense linear system A·x = b assembled each Newton
// iteration. Unknown indices: node k (k ≥ 1) maps to index k−1; element
// auxiliary unknowns (source branch currents, CSM internal nodes) follow.
// Index −1 denotes ground and is silently discarded by the Add methods.
type System struct {
	N int
	A []float64 // row-major N×N
	B []float64
}

// NewSystem allocates an N-unknown system.
func NewSystem(n int) *System {
	return &System{N: n, A: make([]float64, n*n), B: make([]float64, n)}
}

// Clear zeroes the system for reassembly.
func (s *System) Clear() {
	for i := range s.A {
		s.A[i] = 0
	}
	for i := range s.B {
		s.B[i] = 0
	}
}

// AddA accumulates v into A[i,j]. Negative indices (ground) are ignored.
func (s *System) AddA(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	s.A[i*s.N+j] += v
}

// AddB accumulates v into b[i]. Negative indices are ignored.
func (s *System) AddB(i int, v float64) {
	if i < 0 {
		return
	}
	s.B[i] += v
}

// errSingular is returned when LU factorization meets a numerically zero
// pivot.
var errSingular = errors.New("spice: singular matrix")

// Solve returns x solving A·x = b. The system contents are destroyed.
//
// The factorization equilibrates rows (MNA systems mix gmin-scale 1e-12 S
// rows with 1e-2 S cap companions and unit source constraints) and applies
// two rounds of iterative refinement against the original matrix: without
// refinement the ~1e10 condition number leaves µA-scale residuals that
// stall Newton's line search at a false floor.
func (s *System) Solve() ([]float64, error) {
	n := s.N
	a0 := append([]float64(nil), s.A...)
	b0 := append([]float64(nil), s.B...)
	f, err := factorize(n, s.A)
	if err != nil {
		return nil, err
	}
	x := f.solve(append([]float64(nil), b0...))
	// Iterative refinement.
	r := make([]float64, n)
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			sum := b0[i]
			row := i * n
			for j := 0; j < n; j++ {
				sum -= a0[row+j] * x[j]
			}
			r[i] = sum
		}
		d := f.solve(r)
		for i := range x {
			x[i] += d[i]
		}
	}
	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return nil, errSingular
		}
	}
	return x, nil
}

// lu is a row-equilibrated LU factorization with partial pivoting.
type lu struct {
	n     int
	a     []float64 // factors, in place, virtual row order via perm
	perm  []int
	scale []float64 // row equilibration factors
}

// factorize decomposes a (destroyed in place).
func factorize(n int, a []float64) (*lu, error) {
	f := &lu{n: n, a: a, perm: make([]int, n), scale: make([]float64, n)}
	for i := 0; i < n; i++ {
		f.perm[i] = i
		row := i * n
		m := 0.0
		for j := 0; j < n; j++ {
			if v := math.Abs(a[row+j]); v > m {
				m = v
			}
		}
		inv := 1.0
		if m > 0 {
			inv = 1 / m
		}
		f.scale[i] = inv
		if inv != 1 {
			for j := 0; j < n; j++ {
				a[row+j] *= inv
			}
		}
	}
	for col := 0; col < n; col++ {
		p := col
		max := math.Abs(a[f.perm[col]*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[f.perm[r]*n+col]); v > max {
				max, p = v, r
			}
		}
		if max < 1e-300 {
			return nil, errSingular
		}
		f.perm[col], f.perm[p] = f.perm[p], f.perm[col]
		prow := f.perm[col] * n
		pivot := a[prow+col]
		for r := col + 1; r < n; r++ {
			row := f.perm[r] * n
			m := a[row+col] / pivot
			a[row+col] = m // store the multiplier for solve()
			if m == 0 {
				continue
			}
			for k := col + 1; k < n; k++ {
				a[row+k] -= m * a[prow+k]
			}
		}
	}
	return f, nil
}

// solve applies the factorization to rhs (modified in place; also returned).
func (f *lu) solve(rhs []float64) []float64 {
	n := f.n
	for i := 0; i < n; i++ {
		rhs[i] *= f.scale[i]
	}
	// Forward elimination using the stored multipliers.
	for col := 0; col < n; col++ {
		for r := col + 1; r < n; r++ {
			m := f.a[f.perm[r]*n+col]
			if m != 0 {
				rhs[f.perm[r]] -= m * rhs[f.perm[col]]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		row := f.perm[i] * n
		sum := rhs[f.perm[i]]
		for k := i + 1; k < n; k++ {
			sum -= f.a[row+k] * x[k]
		}
		x[i] = sum / f.a[row+i]
	}
	return x
}

// StampConductance adds a two-terminal conductance g between nodes a and b
// using the standard four-entry pattern.
func StampConductance(sys *System, a, b Node, g float64) {
	ia, ib := unknownIndex(a), unknownIndex(b)
	sys.AddA(ia, ia, g)
	sys.AddA(ib, ib, g)
	sys.AddA(ia, ib, -g)
	sys.AddA(ib, ia, -g)
}

// unknownIndex maps a node to its unknown index (−1 for ground).
func unknownIndex(n Node) int { return int(n) - 1 }
