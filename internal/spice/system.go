package spice

import (
	"errors"
	"fmt"
	"math"
)

// System is the dense linear system A·x = b assembled each Newton
// iteration. Unknown indices: node k (k ≥ 1) maps to index k−1; element
// auxiliary unknowns (source branch currents, CSM internal nodes) follow.
// Index −1 denotes ground and is silently discarded by the Add methods.
type System struct {
	N int
	A []float64 // row-major N×N
	B []float64
}

// NewSystem allocates an N-unknown system.
func NewSystem(n int) *System {
	return &System{N: n, A: make([]float64, n*n), B: make([]float64, n)}
}

// Clear zeroes the system for reassembly.
func (s *System) Clear() {
	for i := range s.A {
		s.A[i] = 0
	}
	for i := range s.B {
		s.B[i] = 0
	}
}

// AddA accumulates v into A[i,j]. Negative indices (ground) are ignored.
func (s *System) AddA(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	s.A[i*s.N+j] += v
}

// AddB accumulates v into b[i]. Negative indices are ignored.
func (s *System) AddB(i int, v float64) {
	if i < 0 {
		return
	}
	s.B[i] += v
}

// ErrSingular is the sentinel wrapped by every solver failure caused by a
// numerically singular (or non-finite) system. Callers match it with
// errors.Is; the wrapping message carries the unknown count and the
// offending pivot for diagnosability.
var ErrSingular = errors.New("spice: singular matrix")

// SolveWorkspace holds every scratch buffer one solve needs: the factor
// matrix, the permutation and equilibration vectors, and the
// solution/residual/correction vectors of iterative refinement. A solver
// hot loop (one Newton iteration per call, thousands of calls per
// characterization) reuses one workspace and allocates nothing.
//
// A workspace is not safe for concurrent use; each Engine owns one.
type SolveWorkspace struct {
	n       int
	fact    lu
	af      []float64 // factor buffer: copy of A, decomposed in place
	x, r, d []float64 // solution, refinement residual, refinement correction
}

// NewSolveWorkspace returns a workspace sized for n unknowns. It grows
// automatically if later used with a larger system.
func NewSolveWorkspace(n int) *SolveWorkspace {
	ws := &SolveWorkspace{}
	ws.ensure(n)
	return ws
}

// ensure (re)sizes the buffers for n unknowns.
func (ws *SolveWorkspace) ensure(n int) {
	if ws.n == n && ws.af != nil {
		return
	}
	ws.n = n
	ws.af = make([]float64, n*n)
	ws.x = make([]float64, n)
	ws.r = make([]float64, n)
	ws.d = make([]float64, n)
	ws.fact = lu{n: n, l: make([]float64, n*n), perm: make([]int, n), scale: make([]float64, n)}
}

// Solve returns x solving A·x = b, leaving the system contents intact.
// It is the convenience form of SolveWith for one-shot callers: a fresh
// workspace is allocated and the solution copied out.
func (s *System) Solve() ([]float64, error) {
	x, err := s.SolveWith(NewSolveWorkspace(s.N))
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), x...), nil
}

// SolveWith solves A·x = b using the workspace's buffers. The system
// contents are preserved (the factorization decomposes a workspace copy),
// which lets the Newton loop keep the assembled system for residual
// reuse. The returned slice is owned by ws and overwritten by the next
// call.
//
// The factorization equilibrates rows (MNA systems mix gmin-scale 1e-12 S
// rows with 1e-2 S cap companions and unit source constraints) and applies
// two rounds of iterative refinement against the original matrix: without
// refinement the ~1e10 condition number leaves µA-scale residuals that
// stall Newton's line search at a false floor.
func (s *System) SolveWith(ws *SolveWorkspace) ([]float64, error) {
	n := s.N
	ws.ensure(n)
	copy(ws.af, s.A)
	if err := ws.fact.factorize(n, ws.af); err != nil {
		return nil, err
	}
	copy(ws.r, s.B)
	ws.fact.solveInto(ws.r, ws.x)
	x := ws.x
	// Iterative refinement against the untouched A/B.
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			sum := s.B[i]
			arow := s.A[i*n : i*n+n : i*n+n]
			for j, v := range arow {
				sum -= v * x[j]
			}
			ws.r[i] = sum
		}
		ws.fact.solveInto(ws.r, ws.d)
		for i := range x {
			x[i] += ws.d[i]
		}
	}
	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return nil, fmt.Errorf("%w: non-finite solution for %d unknowns (worst pivot %.3g at column %d)",
				ErrSingular, n, ws.fact.minPivot, ws.fact.minPivotCol)
		}
	}
	return x, nil
}

// lu is a row-equilibrated LU factorization with partial pivoting. Rows
// are pivoted physically (swapped in the factor buffer) and the
// elimination multipliers are stored column-major in l, so the three
// substitutions each factorization serves (one solve plus two refinement
// rounds) walk contiguous memory with no permutation indirection. The
// arithmetic — operand values and operation order — is identical to the
// classic virtual-permutation formulation; only the data layout differs.
type lu struct {
	n     int
	a     []float64 // U (and scratch) in physical pivot order
	l     []float64 // multipliers, column-major: l[col*n+r]
	perm  []int     // perm[i] = original row index at physical position i
	scale []float64 // row equilibration factors, original row order

	// Diagnostics: the smallest accepted pivot and its column, reported
	// when a downstream solve turns out non-finite.
	minPivot    float64
	minPivotCol int
}

// factorize decomposes the matrix in buffer a (destroyed in place). perm,
// scale, and l must already have length n / n·n.
func (f *lu) factorize(n int, a []float64) error {
	f.n, f.a = n, a
	f.minPivot, f.minPivotCol = math.Inf(1), -1
	for i := 0; i < n; i++ {
		f.perm[i] = i
		row := i * n
		m := 0.0
		for j := 0; j < n; j++ {
			if v := math.Abs(a[row+j]); v > m {
				m = v
			}
		}
		inv := 1.0
		if m > 0 {
			inv = 1 / m
		}
		f.scale[i] = inv
		if inv != 1 {
			for j := 0; j < n; j++ {
				a[row+j] *= inv
			}
		}
	}
	for col := 0; col < n; col++ {
		p := col
		max := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > max {
				max, p = v, r
			}
		}
		if max < 1e-300 {
			return fmt.Errorf("%w: %d unknowns, numerically zero pivot %.3g at column %d",
				ErrSingular, n, max, col)
		}
		if max < f.minPivot {
			f.minPivot, f.minPivotCol = max, col
		}
		if p != col {
			f.perm[col], f.perm[p] = f.perm[p], f.perm[col]
			pr, cr := a[p*n:p*n+n:p*n+n], a[col*n:col*n+n:col*n+n]
			for k := range pr {
				pr[k], cr[k] = cr[k], pr[k]
			}
			// Swap the already-stored multiplier prefixes too: they belong
			// to the logical rows being exchanged.
			lcolp, lcolc := p, col
			for c := 0; c < col; c++ {
				f.l[c*n+lcolp], f.l[c*n+lcolc] = f.l[c*n+lcolc], f.l[c*n+lcolp]
			}
		}
		prow := col * n
		pivot := a[prow+col]
		ap := a[prow+col+1 : prow+n : prow+n]
		lcol := f.l[col*n : col*n+n : col*n+n]
		for r := col + 1; r < n; r++ {
			row := r * n
			m := a[row+col] / pivot
			lcol[r] = m
			if m == 0 {
				continue
			}
			ar := a[row+col+1 : row+n : row+n]
			for k, v := range ap {
				ar[k] -= m * v
			}
		}
	}
	return nil
}

// solveInto applies the factorization: rhs is consumed (scaled, permuted,
// and forward-eliminated in place), the solution lands in x. rhs and x
// must not alias.
func (f *lu) solveInto(rhs, x []float64) {
	n := f.n
	a, l, perm, scale := f.a, f.l, f.perm, f.scale
	// Equilibrate in original row order, then permute into pivot order
	// (staged through x, which is fully overwritten afterwards).
	for i := 0; i < n; i++ {
		pi := perm[i]
		x[i] = rhs[pi] * scale[pi]
	}
	copy(rhs, x)
	// Forward elimination: contiguous column-major multipliers.
	for col := 0; col < n; col++ {
		rc := rhs[col]
		lcol := l[col*n : col*n+n : col*n+n]
		for r := col + 1; r < n; r++ {
			if m := lcol[r]; m != 0 {
				rhs[r] -= m * rc
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		row := i * n
		sum := rhs[i]
		arow := a[row+i : row+n : row+n]
		xs := x[i:n]
		for k := 1; k < len(arow); k++ {
			sum -= arow[k] * xs[k]
		}
		x[i] = sum / arow[0]
	}
}

// StampConductance adds a two-terminal conductance g between nodes a and b
// using the standard four-entry pattern.
func StampConductance(sys *System, a, b Node, g float64) {
	ia, ib := unknownIndex(a), unknownIndex(b)
	sys.AddA(ia, ia, g)
	sys.AddA(ib, ib, g)
	sys.AddA(ia, ib, -g)
	sys.AddA(ib, ia, -g)
}

// unknownIndex maps a node to its unknown index (−1 for ground).
func unknownIndex(n Node) int { return int(n) - 1 }
