package spice

import (
	"math"
	"testing"

	"mcsm/internal/device"
	"mcsm/internal/wave"
)

func TestAdaptiveRCMatchesAnalytic(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("V1", in, Ground, wave.SaturatedRamp(0, 1, 1e-12, 1e-12, 20e-9))
	c.AddResistor("R", in, out, 1e3)
	c.AddCapacitor("C", out, Ground, 1e-12)
	e := NewEngine(c, DefaultOptions())
	opt := DefaultAdaptive()
	opt.DtMax = 200e-12
	res, err := e.RunAdaptive(0, 10e-9, opt)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wave(out)
	for _, tt := range []float64{0.5e-9, 1e-9, 2e-9, 5e-9} {
		want := 1 - math.Exp(-(tt-2e-12)/1e-9)
		if got := w.At(tt); math.Abs(got-want) > 0.02 {
			t.Errorf("adaptive RC at %g: %g want %g", tt, got, want)
		}
	}
	// Must take far fewer steps than fixed 1 ps stepping (10000 steps).
	if res.Steps() > 3000 {
		t.Errorf("adaptive used %d steps, expected large savings", res.Steps())
	}
	t.Logf("adaptive RC: %d steps (fixed 1ps would use 10000)", res.Steps())
}

func TestAdaptiveInverterMatchesFixed(t *testing.T) {
	np := device.N130()
	pp := device.P130()
	build := func() (*Engine, Node) {
		c := NewCircuit()
		vdd := c.Node("vdd")
		in := c.Node("in")
		out := c.Node("out")
		c.AddVSource("VDD", vdd, Ground, DC(1.2))
		c.AddVSource("VIN", in, Ground, wave.SaturatedRamp(0, 1.2, 0.5e-9, 80e-12, 3e-9))
		c.AddMOS("MN", out, in, Ground, Ground, &np, 0.2e-6)
		c.AddMOS("MP", out, in, vdd, vdd, &pp, 0.4e-6)
		c.AddCapacitor("CL", out, Ground, 5e-15)
		return NewEngine(c, DefaultOptions()), out
	}

	eFixed, outF := build()
	fixed, err := eFixed.Run(0, 3e-9, 0.5e-12)
	if err != nil {
		t.Fatal(err)
	}
	eAd, outA := build()
	ad, err := eAd.RunAdaptive(0, 3e-9, DefaultAdaptive())
	if err != nil {
		t.Fatal(err)
	}

	wF := fixed.Wave(outF)
	wA := ad.Wave(outA)
	tF, ok1 := wF.CrossTime(0.6, false, 0)
	tA, ok2 := wA.CrossTime(0.6, false, 0)
	if !ok1 || !ok2 {
		t.Fatal("missing output crossings")
	}
	if d := math.Abs(tF - tA); d > 1.5e-12 {
		t.Errorf("adaptive vs fixed 50%% crossing differ by %.2fps", d*1e12)
	}
	if ad.Steps() >= fixed.Steps()/3 {
		t.Errorf("adaptive %d steps vs fixed %d: insufficient savings", ad.Steps(), fixed.Steps())
	}
	rmse := wave.RMSE(wF, wA, 0, 3e-9, 2000)
	if rmse > 0.01 {
		t.Errorf("adaptive vs fixed RMSE %.4f V", rmse)
	}
	t.Logf("adaptive %d steps vs fixed %d; crossing diff %.2fps; RMSE %.2gmV",
		ad.Steps(), fixed.Steps(), math.Abs(tF-tA)*1e12, rmse*1e3)
}

func TestAdaptiveValidation(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddVSource("V", n, Ground, DC(1))
	e := NewEngine(c, DefaultOptions())
	if _, err := e.RunAdaptive(0, -1, DefaultAdaptive()); err == nil {
		t.Error("negative window accepted")
	}
	bad := DefaultAdaptive()
	bad.DtMin = 0
	if _, err := e.RunAdaptive(0, 1e-9, bad); err == nil {
		t.Error("zero DtMin accepted")
	}
	if _, err := e.RunAdaptiveFrom([]float64{1}, 0, 1e-9, DefaultAdaptive()); err == nil {
		t.Error("wrong-size state accepted")
	}
}

// TestSwitchingEnergy validates the engine's charge bookkeeping: the energy
// the supply delivers while an inverter charges its load is E = Ctot·Vdd²
// (half stored, half dissipated). With the device's own output parasitics
// alongside CL, the measured energy must land between CL·Vdd² and ≈2× that.
func TestSwitchingEnergy(t *testing.T) {
	np := device.N130()
	pp := device.P130()
	vdd := 1.2
	cl := 10e-15
	c := NewCircuit()
	vddN := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VDD", vddN, Ground, DC(vdd))
	// Input falls → output rises → supply delivers the switching energy.
	c.AddVSource("VIN", in, Ground, wave.SaturatedRamp(vdd, 0, 0.5e-9, 80e-12, 4e-9))
	c.AddMOS("MN", out, in, Ground, Ground, &np, 0.2e-6)
	c.AddMOS("MP", out, in, vddN, vddN, &pp, 0.4e-6)
	c.AddCapacitor("CL", out, Ground, cl)
	e := NewEngine(c, DefaultOptions())
	res, err := e.Run(0, 4e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	energy, err := res.SupplyEnergy("VDD", 0.4e-9, 3.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	ideal := cl * vdd * vdd
	if energy < ideal || energy > 2.5*ideal {
		t.Errorf("switching energy %.3g J outside [%.3g, %.3g] (CL·Vdd² bookkeeping broken)",
			energy, ideal, 2.5*ideal)
	}
	t.Logf("switching energy %.3g J vs CL·Vdd² = %.3g J", energy, ideal)
	if _, err := res.SupplyEnergy("NOPE", 0, 1); err == nil {
		t.Error("unknown source accepted")
	}
}
