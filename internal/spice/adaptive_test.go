package spice

import (
	"math"
	"testing"

	"mcsm/internal/device"
	"mcsm/internal/wave"
)

func TestAdaptiveRCMatchesAnalytic(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("V1", in, Ground, wave.SaturatedRamp(0, 1, 1e-12, 1e-12, 20e-9))
	c.AddResistor("R", in, out, 1e3)
	c.AddCapacitor("C", out, Ground, 1e-12)
	e := NewEngine(c, DefaultOptions())
	opt := DefaultAdaptive()
	opt.DtMax = 200e-12
	res, err := e.RunAdaptive(0, 10e-9, opt)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wave(out)
	for _, tt := range []float64{0.5e-9, 1e-9, 2e-9, 5e-9} {
		want := 1 - math.Exp(-(tt-2e-12)/1e-9)
		if got := w.At(tt); math.Abs(got-want) > 0.02 {
			t.Errorf("adaptive RC at %g: %g want %g", tt, got, want)
		}
	}
	// Must take far fewer steps than fixed 1 ps stepping (10000 steps).
	if res.Steps() > 3000 {
		t.Errorf("adaptive used %d steps, expected large savings", res.Steps())
	}
	t.Logf("adaptive RC: %d steps (fixed 1ps would use 10000)", res.Steps())
}

func TestAdaptiveInverterMatchesFixed(t *testing.T) {
	np := device.N130()
	pp := device.P130()
	build := func() (*Engine, Node) {
		c := NewCircuit()
		vdd := c.Node("vdd")
		in := c.Node("in")
		out := c.Node("out")
		c.AddVSource("VDD", vdd, Ground, DC(1.2))
		c.AddVSource("VIN", in, Ground, wave.SaturatedRamp(0, 1.2, 0.5e-9, 80e-12, 3e-9))
		c.AddMOS("MN", out, in, Ground, Ground, &np, 0.2e-6)
		c.AddMOS("MP", out, in, vdd, vdd, &pp, 0.4e-6)
		c.AddCapacitor("CL", out, Ground, 5e-15)
		return NewEngine(c, DefaultOptions()), out
	}

	eFixed, outF := build()
	fixed, err := eFixed.Run(0, 3e-9, 0.5e-12)
	if err != nil {
		t.Fatal(err)
	}
	eAd, outA := build()
	ad, err := eAd.RunAdaptive(0, 3e-9, DefaultAdaptive())
	if err != nil {
		t.Fatal(err)
	}

	wF := fixed.Wave(outF)
	wA := ad.Wave(outA)
	tF, ok1 := wF.CrossTime(0.6, false, 0)
	tA, ok2 := wA.CrossTime(0.6, false, 0)
	if !ok1 || !ok2 {
		t.Fatal("missing output crossings")
	}
	if d := math.Abs(tF - tA); d > 1.5e-12 {
		t.Errorf("adaptive vs fixed 50%% crossing differ by %.2fps", d*1e12)
	}
	if ad.Steps() >= fixed.Steps()/3 {
		t.Errorf("adaptive %d steps vs fixed %d: insufficient savings", ad.Steps(), fixed.Steps())
	}
	rmse := wave.RMSE(wF, wA, 0, 3e-9, 2000)
	if rmse > 0.01 {
		t.Errorf("adaptive vs fixed RMSE %.4f V", rmse)
	}
	t.Logf("adaptive %d steps vs fixed %d; crossing diff %.2fps; RMSE %.2gmV",
		ad.Steps(), fixed.Steps(), math.Abs(tF-tA)*1e12, rmse*1e3)
}

// TestAdaptiveDtInitSeeding pins the warm-start step seeding: on a quiet
// circuit the very first step is exactly DtInit, out-of-range seeds clamp
// to [DtMin, DtMax], and zero keeps the historical DtMin·4 default.
func TestAdaptiveDtInitSeeding(t *testing.T) {
	build := func() (*Engine, []float64) {
		c := NewCircuit()
		n := c.Node("n")
		c.AddVSource("V", n, Ground, DC(1))
		c.AddResistor("R", n, c.Node("out"), 1e3)
		c.AddCapacitor("C", c.Node("out"), Ground, 1e-12)
		e := NewEngine(c, DefaultOptions())
		x0, err := e.DCAt(0)
		if err != nil {
			t.Fatal(err)
		}
		return e, x0
	}
	opt := DefaultAdaptive()
	opt.DtMin = 1e-12
	opt.DtMax = 100e-12
	cases := []struct {
		init, want float64
	}{
		{0, 4e-12},        // default DtMin·4
		{25e-12, 25e-12},  // used as-is
		{0.1e-12, 1e-12},  // clamped up to DtMin
		{900e-12, 100e-12}, // clamped down to DtMax
	}
	for _, tc := range cases {
		e, x0 := build()
		o := opt
		o.DtInit = tc.init
		res, err := e.RunAdaptiveFrom(x0, 0, 1e-9, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Times) < 2 {
			t.Fatal("no steps recorded")
		}
		got := res.Times[1] - res.Times[0]
		if math.Abs(got-tc.want) > tc.want*1e-9 {
			t.Errorf("DtInit=%g: first step %g, want %g", tc.init, got, tc.want)
		}
	}
}

// TestAdaptiveStepRejection drives an RC into a fast transition with a
// deliberately huge seeded step: the ΔV criterion must reject and shrink it
// rather than record a coarse first step.
func TestAdaptiveStepRejection(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("V1", in, Ground, wave.SaturatedRamp(0, 1, 10e-12, 5e-12, 5e-9))
	c.AddResistor("R", in, out, 1e3)
	c.AddCapacitor("C", out, Ground, 1e-12)
	e := NewEngine(c, DefaultOptions())
	x0, err := e.DCAt(0)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultAdaptive()
	opt.DtMin = 0.5e-12
	opt.DtMax = 500e-12
	opt.MaxDV = 0.05
	opt.DtInit = 500e-12 // the input finishes its swing inside one such step
	res, err := e.RunAdaptiveFrom(x0, 0, 3e-9, opt)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Times[1] - res.Times[0]
	if first > opt.DtInit/2 {
		t.Errorf("first step %g was not rejected (seed %g, MaxDV %g)", first, opt.DtInit, opt.MaxDV)
	}
	// The accepted trajectory must still respect the ΔV bound away from the
	// minimum-step floor.
	w := res.Wave(out)
	for i := 1; i < len(res.Times); i++ {
		dv := math.Abs(w.V[i] - w.V[i-1])
		dt := res.Times[i] - res.Times[i-1]
		if dv > opt.MaxDV*1.0001 && dt > opt.DtMin*1.0001 {
			t.Errorf("step %d: ΔV %.3g at dt %.3g violates MaxDV", i, dv, dt)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddVSource("V", n, Ground, DC(1))
	e := NewEngine(c, DefaultOptions())
	if _, err := e.RunAdaptive(0, -1, DefaultAdaptive()); err == nil {
		t.Error("negative window accepted")
	}
	bad := DefaultAdaptive()
	bad.DtMin = 0
	if _, err := e.RunAdaptive(0, 1e-9, bad); err == nil {
		t.Error("zero DtMin accepted")
	}
	if _, err := e.RunAdaptiveFrom([]float64{1}, 0, 1e-9, DefaultAdaptive()); err == nil {
		t.Error("wrong-size state accepted")
	}
}

// TestSwitchingEnergy validates the engine's charge bookkeeping: the energy
// the supply delivers while an inverter charges its load is E = Ctot·Vdd²
// (half stored, half dissipated). With the device's own output parasitics
// alongside CL, the measured energy must land between CL·Vdd² and ≈2× that.
func TestSwitchingEnergy(t *testing.T) {
	np := device.N130()
	pp := device.P130()
	vdd := 1.2
	cl := 10e-15
	c := NewCircuit()
	vddN := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VDD", vddN, Ground, DC(vdd))
	// Input falls → output rises → supply delivers the switching energy.
	c.AddVSource("VIN", in, Ground, wave.SaturatedRamp(vdd, 0, 0.5e-9, 80e-12, 4e-9))
	c.AddMOS("MN", out, in, Ground, Ground, &np, 0.2e-6)
	c.AddMOS("MP", out, in, vddN, vddN, &pp, 0.4e-6)
	c.AddCapacitor("CL", out, Ground, cl)
	e := NewEngine(c, DefaultOptions())
	res, err := e.Run(0, 4e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	energy, err := res.SupplyEnergy("VDD", 0.4e-9, 3.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	ideal := cl * vdd * vdd
	if energy < ideal || energy > 2.5*ideal {
		t.Errorf("switching energy %.3g J outside [%.3g, %.3g] (CL·Vdd² bookkeeping broken)",
			energy, ideal, 2.5*ideal)
	}
	t.Logf("switching energy %.3g J vs CL·Vdd² = %.3g J", energy, ideal)
	if _, err := res.SupplyEnergy("NOPE", 0, 1); err == nil {
		t.Error("unknown source accepted")
	}
}
