package spice

// Resistor is a linear two-terminal resistance.
type Resistor struct {
	name string
	a, b Node
	g    float64
}

// Name returns the element name.
func (r *Resistor) Name() string { return r.name }

// Stamp adds the resistor's conductance.
func (r *Resistor) Stamp(sys *System, ctx *Context) {
	StampConductance(sys, r.a, r.b, r.g)
}

// Capacitor is a linear two-terminal capacitance.
type Capacitor struct {
	name   string
	a, b   Node
	c      float64
	branch CapBranch
}

// Name returns the element name.
func (c *Capacitor) Name() string { return c.name }

// Stamp adds the integration companion model (open in DC).
func (c *Capacitor) Stamp(sys *System, ctx *Context) {
	c.branch.Stamp(sys, ctx, c.a, c.b, c.c)
}

// BeginStep implements Stepper (no per-step preparation needed).
func (c *Capacitor) BeginStep(ctx *Context) {}

// AcceptStep records the converged branch current.
func (c *Capacitor) AcceptStep(ctx *Context) {
	c.branch.Accept(ctx, c.a, c.b, c.c)
}

// VSource is an ideal voltage source with a time-dependent stimulus. Its
// branch current is an auxiliary MNA unknown, positive when flowing from
// the positive terminal through the source to the negative terminal (i.e.
// the current delivered *into* the source by the external circuit at p).
type VSource struct {
	name string
	p, n Node
	stim Stimulus
	aux  int
}

// Name returns the element name.
func (v *VSource) Name() string { return v.name }

// AuxCount reports one auxiliary unknown (the branch current).
func (v *VSource) AuxCount() int { return 1 }

// SetAuxBase records the assigned auxiliary index.
func (v *VSource) SetAuxBase(base int) { v.aux = base }

// AuxIndex returns the absolute unknown index of the branch current.
func (v *VSource) AuxIndex() int { return v.aux }

// Value returns the stimulus value at time t (without source scaling).
func (v *VSource) Value(t float64) float64 { return v.stim.At(t) }

// SetStimulus replaces the source's stimulus. Characterization reuses one
// harness circuit across many sweep points and ramp shapes.
func (v *VSource) SetStimulus(s Stimulus) { v.stim = s }

// Stamp adds the source rows: KCL coupling of the branch current and the
// voltage constraint v(p) − v(n) = E(t)·SrcScale.
func (v *VSource) Stamp(sys *System, ctx *Context) {
	ip, in := unknownIndex(v.p), unknownIndex(v.n)
	j := v.aux
	// Branch current leaves p, enters n.
	sys.AddA(ip, j, 1)
	sys.AddA(in, j, -1)
	// Constraint row.
	sys.AddA(j, ip, 1)
	sys.AddA(j, in, -1)
	sys.AddB(j, v.stim.At(ctx.Time)*ctx.SrcScale)
}

// ISource is an ideal current source pushing the stimulus current from node
// a to node b (injecting into b).
type ISource struct {
	name string
	a, b Node
	stim Stimulus
}

// Name returns the element name.
func (i *ISource) Name() string { return i.name }

// Stamp adds the injected currents scaled by the source-stepping factor.
func (i *ISource) Stamp(sys *System, ctx *Context) {
	val := i.stim.At(ctx.Time) * ctx.SrcScale
	ia, ib := unknownIndex(i.a), unknownIndex(i.b)
	// Current val leaves node a: F_a += val ⇒ b_a −= val.
	sys.AddB(ia, -val)
	sys.AddB(ib, val)
}
