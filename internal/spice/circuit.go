// Package spice is a compact transistor-level circuit simulator: the
// substrate that stands in for HSPICE in this reproduction.
//
// It implements dense modified nodal analysis (MNA) with:
//
//   - Newton–Raphson iteration with per-iteration voltage limiting,
//   - DC operating-point analysis with gmin stepping and source stepping
//     fallbacks,
//   - fixed-step transient analysis with backward-Euler or trapezoidal
//     integration,
//   - linear elements (R, C, V/I sources with arbitrary PWL stimuli),
//     MOSFETs backed by internal/device, and arbitrary user elements (the
//     CSM behavioral cell of internal/csm plugs in through the Element
//     interface).
//
// Circuits in this repository are small (a handful of nodes), so the dense
// formulation with partial-pivot LU is both simple and fast.
package spice

import (
	"fmt"

	"mcsm/internal/device"
	"mcsm/internal/wave"
)

// Node identifies a circuit node. Node 0 is ground.
type Node int

// Ground is the reference node; its voltage is identically zero.
const Ground Node = 0

// Stimulus is a time-dependent source value. wave.Waveform satisfies it.
type Stimulus interface {
	At(t float64) float64
}

// DC is a constant stimulus.
type DC float64

// At returns the constant value regardless of time.
func (d DC) At(float64) float64 { return float64(d) }

// SetDC is a mutable constant stimulus: characterization sweeps reuse one
// circuit/engine pair and retarget the source values between solves.
type SetDC struct{ V float64 }

// At returns the current value regardless of time.
func (s *SetDC) At(float64) float64 { return s.V }

// Circuit is a netlist: a set of named nodes and the elements connecting
// them. Elements are added through the Add* helpers or Add for custom
// Element implementations.
type Circuit struct {
	names  []string
	byName map[string]int
	elems  []Element
}

// NewCircuit returns an empty circuit containing only the ground node "0".
func NewCircuit() *Circuit {
	c := &Circuit{byName: map[string]int{"0": 0}, names: []string{"0"}}
	return c
}

// Node returns the node with the given name, creating it on first use.
// The name "0" is the ground node.
func (c *Circuit) Node(name string) Node {
	if i, ok := c.byName[name]; ok {
		return Node(i)
	}
	i := len(c.names)
	c.names = append(c.names, name)
	c.byName[name] = i
	return Node(i)
}

// NodeName returns the name of a node.
func (c *Circuit) NodeName(n Node) string {
	if int(n) < len(c.names) {
		return c.names[n]
	}
	return fmt.Sprintf("node#%d", int(n))
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// Elements returns the elements in insertion order.
func (c *Circuit) Elements() []Element { return c.elems }

// Add registers a custom element.
func (c *Circuit) Add(e Element) { c.elems = append(c.elems, e) }

// AddResistor connects a linear resistor of the given resistance (ohms)
// between nodes a and b.
func (c *Circuit) AddResistor(name string, a, b Node, ohms float64) {
	c.Add(&Resistor{name: name, a: a, b: b, g: 1 / ohms})
}

// AddCapacitor connects a linear capacitor (farads) between nodes a and b.
func (c *Circuit) AddCapacitor(name string, a, b Node, farads float64) {
	c.Add(&Capacitor{name: name, a: a, b: b, c: farads})
}

// AddVSource connects a voltage source between p (positive) and n with the
// given stimulus. The source current is recorded and retrievable from
// transient results via Result.Current(name).
func (c *Circuit) AddVSource(name string, p, n Node, stim Stimulus) *VSource {
	v := &VSource{name: name, p: p, n: n, stim: stim}
	c.Add(v)
	return v
}

// AddISource connects a current source pushing the stimulus current from
// node a to node b (i.e. injecting into b).
func (c *Circuit) AddISource(name string, a, b Node, stim Stimulus) {
	c.Add(&ISource{name: name, a: a, b: b, stim: stim})
}

// AddMOS instantiates a MOSFET with terminals drain, gate, source, bulk,
// the given model card, and gate width w (meters).
func (c *Circuit) AddMOS(name string, d, g, s, b Node, params *device.Params, w float64) {
	c.Add(&MOSFET{name: name, d: d, g: g, s: s, b: b, mos: device.MOS{P: params, W: w}})
}

var _ Stimulus = wave.Waveform{} // wave.Waveform is usable as a stimulus
