package sta

import (
	"fmt"
	"math"
	"sort"

	"mcsm/internal/cells"
	"mcsm/internal/csm"
	"mcsm/internal/wave"
)

// Mode selects the propagation policy.
type Mode int

// Propagation modes.
const (
	// ModeMIS simulates all switching inputs of a stage together.
	ModeMIS Mode = iota
	// ModeSIS applies the conventional single-input-switching assumption.
	ModeSIS
)

// Options configures an analysis run.
type Options struct {
	Mode    Mode
	Dt      float64 // stage integration step (default 1 ps)
	Horizon float64 // simulation window end (default: last input end + 2 ns)
}

// NetResult records the timing view of one net.
type NetResult struct {
	Wave    wave.Waveform
	Arrival float64 // first 50% crossing after t=0 (NaN if the net never switches)
	Slew    float64 // 10–90% transition time of that first transition
	Rising  bool    // direction of the first transition
}

// Report is the outcome of an analysis.
type Report struct {
	Vdd  float64
	Nets map[string]NetResult
	// MISInstances lists cells at which two or more modeled inputs switch
	// during the window — the events conventional SIS timing mispredicts.
	MISInstances []string
}

// Analyze propagates primary-input waveforms through the netlist using the
// given per-cell-type models. Net loading combines the per-net wire caps
// with the fanout cells' receiver capacitance tables.
//
// Analyze is the serial reference path; internal/engine runs the exact same
// Setup/EvalStage/BuildReport primitives level-parallel and is guaranteed
// (by test) to produce a bit-identical Report.
func Analyze(nl *Netlist, models map[string]*csm.Model, primary map[string]wave.Waveform, opt Options) (*Report, error) {
	order, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	vdd, opt, err := Setup(models, primary, opt)
	if err != nil {
		return nil, err
	}

	waves := map[string]wave.Waveform{}
	for net, w := range primary {
		waves[net] = w
	}
	fanouts := nl.Fanouts()
	var mis []string

	for _, idx := range order {
		outW, switching, err := EvalStage(nl, models, fanouts, idx, waves, vdd, opt)
		if err != nil {
			return nil, err
		}
		if switching >= 2 {
			mis = append(mis, nl.Instances[idx].Name)
		}
		waves[nl.Instances[idx].Output] = outW
	}
	return BuildReport(vdd, waves, mis), nil
}

// Setup validates the model set and resolves defaulted options (Dt, Horizon
// derived from the primary stimuli). It is exported so that alternative
// schedulers (internal/engine) share the serial path's prologue exactly.
func Setup(models map[string]*csm.Model, primary map[string]wave.Waveform, opt Options) (float64, Options, error) {
	var vdd float64
	for _, m := range models {
		vdd = m.Vdd
	}
	if vdd == 0 {
		return 0, opt, fmt.Errorf("sta: no models supplied")
	}
	return vdd, ResolveOptions(primary, opt), nil
}

// ResolveOptions fills the defaulted analysis options (Dt, Horizon derived
// from the primary stimuli) without requiring a model set — shared by
// Setup and by delay backends that carry their own supply voltage.
func ResolveOptions(primary map[string]wave.Waveform, opt Options) Options {
	if opt.Dt <= 0 {
		opt.Dt = 1e-12
	}
	if opt.Horizon <= 0 {
		var last float64
		for _, w := range primary {
			if !w.Empty() && w.End() > last {
				last = w.End()
			}
		}
		opt.Horizon = last + 2e-9
	}
	return opt
}

// EvalStage evaluates the single instance at index idx: it gathers the
// instance's input waveforms from waves, builds the output load, and runs
// the stage simulation, returning the output waveform and the number of
// switching inputs. waves must already hold a waveform for every input net
// of the instance and is only read — concurrent EvalStage calls over the
// instances of one topological level (which never consume each other's
// outputs) are safe as long as no call writes waves in parallel.
func EvalStage(nl *Netlist, models map[string]*csm.Model, fanouts map[string][][2]int, idx int, waves map[string]wave.Waveform, vdd float64, opt Options) (wave.Waveform, int, error) {
	return EvalStageWithLoad(nl, models, idx, waves,
		StageLoad(nl, models, fanouts, nl.Instances[idx].Output), vdd, opt)
}

// EvalStageWithLoad is EvalStage with the output load supplied by the
// caller instead of rebuilt from the fanout map — the primitive the
// incremental timing graph uses to retain per-stage loads across edits
// instead of reassembling them on every evaluation.
func EvalStageWithLoad(nl *Netlist, models map[string]*csm.Model, idx int, waves map[string]wave.Waveform, load csm.Load, vdd float64, opt Options) (wave.Waveform, int, error) {
	inst := nl.Instances[idx]
	model, ok := models[inst.Type]
	if !ok {
		return wave.Waveform{}, 0, fmt.Errorf("sta: no model for cell type %q (instance %s)", inst.Type, inst.Name)
	}
	inWaves, switching, err := gatherInputs(inst, model, waves, opt.Horizon)
	if err != nil {
		return wave.Waveform{}, 0, err
	}

	var outW wave.Waveform
	if opt.Mode == ModeSIS && switching >= 2 {
		spec, serr := cells.Get(inst.Type)
		if serr != nil {
			return wave.Waveform{}, 0, serr
		}
		outW, err = simulateSIS(model, inWaves, spec, vdd, load, opt)
	} else {
		outW, err = simulateStageWaves(model, inWaves, load, opt)
	}
	if err != nil {
		return wave.Waveform{}, 0, fmt.Errorf("sta: stage %s: %w", inst.Name, err)
	}
	return outW, switching, nil
}

// BuildReport measures every net waveform into a Report. misInstances is
// taken over (and sorted) as the report's MIS list.
func BuildReport(vdd float64, waves map[string]wave.Waveform, misInstances []string) *Report {
	rep := &Report{Vdd: vdd, Nets: map[string]NetResult{}, MISInstances: misInstances}
	for net, w := range waves {
		rep.Nets[net] = measureNet(w, vdd)
	}
	sort.Strings(rep.MISInstances)
	return rep
}

// gatherInputs maps instance input nets to the model's input order and
// counts how many of them actually switch. Pins held by the model must be
// fed by non-switching nets.
func gatherInputs(inst Instance, model *csm.Model, waves map[string]wave.Waveform, horizon float64) ([]wave.Waveform, int, error) {
	spec, err := cells.Get(inst.Type)
	if err != nil {
		return nil, 0, fmt.Errorf("sta: instance %s: %w", inst.Name, err)
	}
	if len(inst.Inputs) != len(spec.Inputs) {
		return nil, 0, fmt.Errorf("sta: %s has %d input nets, cell %s expects %d",
			inst.Name, len(inst.Inputs), inst.Type, len(spec.Inputs))
	}
	netOfPin := map[string]string{}
	for i, pin := range spec.Inputs {
		netOfPin[pin] = inst.Inputs[i]
	}
	out := make([]wave.Waveform, len(model.Inputs))
	switching := 0
	for i, pin := range model.Inputs {
		net := netOfPin[pin]
		w, ok := waves[net]
		if !ok {
			return nil, 0, fmt.Errorf("sta: %s input net %q has no waveform", inst.Name, net)
		}
		out[i] = w
		if netSwitches(w) {
			switching++
		}
	}
	// Held (non-modeled) pins must be static at the held level.
	for pin, lvl := range model.Held {
		net := netOfPin[pin]
		w, ok := waves[net]
		if !ok {
			return nil, 0, fmt.Errorf("sta: %s held pin %s net %q has no waveform", inst.Name, pin, net)
		}
		if netSwitches(w) || math.Abs(w.First()-lvl) > 0.05 {
			return nil, 0, fmt.Errorf("sta: %s pin %s is not modeled by the %s CSM and must stay at %g",
				inst.Name, pin, model.Kind, lvl)
		}
	}
	_ = horizon
	return out, switching, nil
}

// netSwitches reports whether a waveform leaves its initial level by more
// than a quarter of its span.
func netSwitches(w wave.Waveform) bool {
	if w.Empty() {
		return false
	}
	min, max := w.Extremum(w.Start(), w.End())
	return max-min > 0.25
}

// StageLoad builds the load on a net: wire capacitance plus every fanout
// pin's receiver capacitance table. It is exported so the incremental
// timing graph can rebuild exactly the load the one-shot path would see
// when an edit invalidates a retained one.
func StageLoad(nl *Netlist, models map[string]*csm.Model, fanouts map[string][][2]int, net string) csm.Load {
	var loads csm.MultiLoad
	if c := nl.NetCap[net]; c > 0 {
		loads = append(loads, csm.CapLoad(c))
	}
	for _, fo := range fanouts[net] {
		inst := nl.Instances[fo[0]]
		model, ok := models[inst.Type]
		if !ok {
			continue
		}
		spec, err := cells.Get(inst.Type)
		if err != nil {
			continue
		}
		pin := spec.Inputs[fo[1]]
		idx := -1
		for i, p := range model.Inputs {
			if p == pin {
				idx = i
			}
		}
		if idx < 0 {
			// Held pin: approximate with the first receiver table.
			idx = 0
		}
		loads = append(loads, csm.ReceiverLoad{Model: model, InputIndex: idx, Count: 1})
	}
	if len(loads) == 0 {
		loads = append(loads, csm.CapLoad(1e-16))
	}
	return loads
}

// simulateStageWaves runs one implicit stage simulation over the window.
func simulateStageWaves(model *csm.Model, inputs []wave.Waveform, load csm.Load, opt Options) (wave.Waveform, error) {
	sr, err := csm.SimulateStage(model, inputs, load, 0, opt.Horizon, opt.Dt)
	if err != nil {
		return wave.Waveform{}, err
	}
	return sr.Out, nil
}

// simulateSIS applies the conventional SIS assumption to a stage with
// multiple switching inputs: each switching input is simulated alone with
// the other inputs parked at the cell's *non-controlling* level — exactly
// the condition single-input delay arcs are characterized under — and the
// arc with the latest output arrival defines the stage output. Because a
// real MIS event makes every series device switch together (the stack is
// not pre-conducting), this assumption is optimistic, reproducing the
// delay-underestimation failure of SIS timing [6].
func simulateSIS(model *csm.Model, inputs []wave.Waveform, spec cells.Spec, vdd float64, load csm.Load, opt Options) (wave.Waveform, error) {
	var best wave.Waveform
	bestArrival := math.Inf(-1)
	for i := range inputs {
		if !netSwitches(inputs[i]) {
			continue
		}
		solo := make([]wave.Waveform, len(inputs))
		for j := range inputs {
			if j == i {
				solo[j] = inputs[j]
			} else {
				solo[j] = wave.Constant(spec.NonControllingLevelFor(model.Inputs[j], vdd), 0, opt.Horizon)
			}
		}
		outW, err := simulateStageWaves(model, solo, load, opt)
		if err != nil {
			return wave.Waveform{}, err
		}
		arr := firstArrival(outW, model.Vdd)
		if arr > bestArrival {
			bestArrival = arr
			best = outW
		}
	}
	if best.Empty() {
		return wave.Waveform{}, fmt.Errorf("csm: SIS stage saw no switching input")
	}
	return best, nil
}

// firstArrival returns the first 50% crossing, or −Inf when absent.
func firstArrival(w wave.Waveform, vdd float64) float64 {
	cs := w.Crossings(vdd / 2)
	if len(cs) == 0 {
		return math.Inf(-1)
	}
	return cs[0].Time
}

// measureNet extracts arrival/slew/direction from a net waveform.
func measureNet(w wave.Waveform, vdd float64) NetResult {
	nr := NetResult{Wave: w, Arrival: math.NaN()}
	cs := w.Crossings(vdd / 2)
	if len(cs) == 0 {
		return nr
	}
	nr.Arrival = cs[0].Time
	nr.Rising = cs[0].Rising
	if s, err := wave.TransitionTime(w, vdd, cs[0].Rising, 0.1, 0.9, 0); err == nil {
		nr.Slew = s
	}
	return nr
}
