package sta

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"

	"mcsm/internal/wave"
)

// This file defines the canonical, bit-exact wire form of a Report: the
// encoding the golden regression fixtures under testdata/golden/ pin
// across PRs, and the response body of the timing service's /v1/sta
// endpoint. Because both producers share this one encoder, "the service
// answers exactly what the CLI computes" is a byte-level statement, not a
// tolerance.

// FormatFloat renders a float with the shortest representation that
// round-trips to the identical bit pattern — the exact-but-readable float
// encoding all golden fixtures use. NaN renders as "NaN".
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// GoldenNet is the canonical per-net record of a golden STA report: exact
// arrival/slew strings, the transition direction, and an FNV-64a hash over
// the bit patterns of every waveform sample, so bit-level waveform drift
// is caught without shipping megabytes of samples.
type GoldenNet struct {
	Arrival string `json:"arrival"`
	Slew    string `json:"slew"`
	Rising  bool   `json:"rising"`
	WaveFNV string `json:"wave_fnv"`
	Samples int    `json:"samples"`
}

// GoldenReport is the canonical JSON form of a Report. Map keys are sorted
// by encoding/json, so marshaling is deterministic.
type GoldenReport struct {
	Circuit string               `json:"circuit"`
	Vdd     string               `json:"vdd"`
	Nets    map[string]GoldenNet `json:"nets"`
	MIS     []string             `json:"mis_instances"`
}

// CanonicalReport converts a report into its golden form.
func CanonicalReport(circuit string, rep *Report) *GoldenReport {
	g := &GoldenReport{
		Circuit: circuit,
		Vdd:     FormatFloat(rep.Vdd),
		Nets:    make(map[string]GoldenNet, len(rep.Nets)),
		MIS:     rep.MISInstances,
	}
	if g.MIS == nil {
		g.MIS = []string{}
	}
	for net, nr := range rep.Nets {
		g.Nets[net] = GoldenNet{
			Arrival: FormatFloat(nr.Arrival),
			Slew:    FormatFloat(nr.Slew),
			Rising:  nr.Rising,
			WaveFNV: WaveFingerprint(nr.Wave),
			Samples: nr.Wave.Len(),
		}
	}
	return g
}

// MarshalGoldenReport renders the canonical golden JSON bytes for a
// report: two-space indent plus a trailing newline, byte-identical across
// producers.
func MarshalGoldenReport(circuit string, rep *Report) ([]byte, error) {
	data, err := json.MarshalIndent(CanonicalReport(circuit, rep), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WaveFingerprint hashes the exact bit patterns of a waveform's samples
// (FNV-64a over big-endian float bits, times then values).
func WaveFingerprint(w wave.Waveform) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, t := range w.T {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(t))
		h.Write(buf[:])
	}
	for _, v := range w.V {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
