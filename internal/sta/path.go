package sta

import "math"

// PathStep is one hop of a timing path: the net and, when the net is driven
// by a cell, the driving instance.
type PathStep struct {
	Net      string
	Instance string // empty for primary inputs
	Arrival  float64
}

// CriticalPath traces the worst (latest-arrival) input path backwards from
// endNet through the netlist, using the arrivals of this report. The result
// runs source → sink. Nets without arrivals (never switching) terminate the
// trace.
func (r *Report) CriticalPath(nl *Netlist, endNet string) []PathStep {
	driver := map[string]*Instance{}
	for i := range nl.Instances {
		driver[nl.Instances[i].Output] = &nl.Instances[i]
	}
	var rev []PathStep
	visited := map[string]bool{}
	net := endNet
	for {
		nr, ok := r.Nets[net]
		if !ok || visited[net] {
			// Unknown net, or a net seen before: the latter can only happen
			// on a cyclic netlist (e.g. assembled by hand or mid-edit, never
			// levelized) — terminate instead of tracing forever.
			break
		}
		visited[net] = true
		step := PathStep{Net: net, Arrival: nr.Arrival}
		inst := driver[net]
		if inst != nil {
			step.Instance = inst.Name
		}
		rev = append(rev, step)
		if inst == nil {
			break // reached a primary input
		}
		// Follow the latest-arriving switching input.
		bestNet := ""
		bestArr := math.Inf(-1)
		for _, in := range inst.Inputs {
			inr, ok := r.Nets[in]
			if !ok || math.IsNaN(inr.Arrival) {
				continue
			}
			if inr.Arrival > bestArr {
				bestArr, bestNet = inr.Arrival, in
			}
		}
		if bestNet == "" {
			break
		}
		net = bestNet
	}
	// Reverse to source → sink order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// WorstOutput returns the primary output with the latest arrival in the
// report (NaN arrivals are skipped). The boolean is false when no output
// has a transition.
func (r *Report) WorstOutput(nl *Netlist) (string, float64, bool) {
	worst := ""
	arr := math.Inf(-1)
	for _, net := range nl.PrimaryOut {
		nr, ok := r.Nets[net]
		if !ok || math.IsNaN(nr.Arrival) {
			continue
		}
		if nr.Arrival > arr {
			worst, arr = net, nr.Arrival
		}
	}
	return worst, arr, worst != ""
}
