package sta

import "mcsm/internal/wave"

// C17Netlist is ISCAS85's smallest benchmark — six NAND2 gates in three
// two-wide topological levels with reconvergent fanout. It is the
// repository's standard perf-probe and equivalence workload, shared by the
// sta and engine tests, the root benchmarks, the golden regression
// fixtures, and cmd/mcsm-bench's -json probe so all of them measure the
// same stimulus.
const C17Netlist = `
input n1 n2 n3 n6 n7
output n22 n23
inst G10 NAND2 n10 n1 n3
inst G11 NAND2 n11 n3 n6
inst G16 NAND2 n16 n2 n11
inst G19 NAND2 n19 n11 n7
inst G22 NAND2 n22 n10 n16
inst G23 NAND2 n23 n16 n19
`

// C17Stimulus is the canonical primary-input drive for C17Netlist: n1 and
// n3 rise 50 ps apart (making G10 a genuine MIS event), the side inputs
// hold at their non-controlling levels.
func C17Stimulus(vdd, horizon float64) map[string]wave.Waveform {
	return map[string]wave.Waveform{
		"n1": wave.SaturatedRamp(0, vdd, 1.00e-9, 80e-12, horizon),
		"n2": wave.Constant(vdd, 0, horizon),
		"n3": wave.SaturatedRamp(0, vdd, 1.05e-9, 80e-12, horizon),
		"n6": wave.Constant(vdd, 0, horizon),
		"n7": wave.Constant(0, 0, horizon),
	}
}
