package sta

import (
	"fmt"

	"mcsm/internal/cells"
	"mcsm/internal/spice"
	"mcsm/internal/wave"
)

// FlatReference elaborates the whole netlist at transistor level in a
// single circuit and simulates it — the golden reference for validating
// the CSM-based propagation.
func FlatReference(nl *Netlist, tech cells.Tech, primary map[string]wave.Waveform, opt Options) (*Report, error) {
	if opt.Dt <= 0 {
		opt.Dt = 1e-12
	}
	if opt.Horizon <= 0 {
		var last float64
		for _, w := range primary {
			if !w.Empty() && w.End() > last {
				last = w.End()
			}
		}
		opt.Horizon = last + 2e-9
	}

	c := spice.NewCircuit()
	vddN := c.Node("vdd")
	c.AddVSource("VDD", vddN, spice.Ground, spice.DC(tech.Vdd))
	for _, net := range nl.PrimaryIn {
		w, ok := primary[net]
		if !ok {
			return nil, fmt.Errorf("sta: primary input %q has no waveform", net)
		}
		c.AddVSource("V_"+net, c.Node(net), spice.Ground, w)
	}
	for net, cap := range nl.NetCap {
		if cap > 0 {
			c.AddCapacitor("CW_"+net, c.Node(net), spice.Ground, cap)
		}
	}
	for _, inst := range nl.Instances {
		spec, err := cells.Get(inst.Type)
		if err != nil {
			return nil, fmt.Errorf("sta: instance %s: %w", inst.Name, err)
		}
		ins := make([]spice.Node, len(inst.Inputs))
		for i, net := range inst.Inputs {
			ins[i] = c.Node(net)
		}
		spec.Build(c, tech, inst.Name, ins, c.Node(inst.Output), vddN, spec.Drive)
	}

	eng := spice.NewEngine(c, spice.DefaultOptions())
	res, err := eng.Run(0, opt.Horizon, opt.Dt)
	if err != nil {
		return nil, fmt.Errorf("sta: flat reference: %w", err)
	}
	rep := &Report{Vdd: tech.Vdd, Nets: map[string]NetResult{}}
	seen := map[string]bool{}
	record := func(net string) {
		if seen[net] {
			return
		}
		seen[net] = true
		w, err := res.WaveByName(net)
		if err == nil {
			rep.Nets[net] = measureNet(w, tech.Vdd)
		}
	}
	for _, net := range nl.PrimaryIn {
		record(net)
	}
	for _, inst := range nl.Instances {
		record(inst.Output)
		for _, net := range inst.Inputs {
			record(net)
		}
	}
	return rep, nil
}
