package sta_test

import (
	"math"
	"strings"
	"testing"

	"mcsm/internal/csm"
	"mcsm/internal/sta"
	"mcsm/internal/testutil"
	"mcsm/internal/wave"
)

const demoNetlist = `
# two-stage demo: NOR2 into INV
input a b
output y
cap n1 1e-15
inst U1 NOR2 n1 a b
inst U2 INV y n1
`

func TestParseNetlist(t *testing.T) {
	nl, err := sta.ParseNetlist(strings.NewReader(demoNetlist))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Instances) != 2 || len(nl.PrimaryIn) != 2 || len(nl.PrimaryOut) != 1 {
		t.Fatalf("parse result: %+v", nl)
	}
	if nl.NetCap["n1"] != 1e-15 {
		t.Errorf("net cap = %g", nl.NetCap["n1"])
	}
	// Error cases.
	bad := []string{
		"",
		"bogus x y\n",
		"cap n\n",
		"inst U1 NOR2\n",
		"cap n xx\n",
	}
	for _, b := range bad {
		if _, err := sta.ParseNetlist(strings.NewReader(b)); err == nil {
			t.Errorf("accepted %q", b)
		}
	}
}

// TestParseNetlistRedefinition pins the parse-time rejection of duplicate
// declarations: each case must fail with an error naming the offending
// line, not be silently accepted.
func TestParseNetlistRedefinition(t *testing.T) {
	cases := []struct {
		name, src, wantLine string
	}{
		{
			name:     "duplicate primary input",
			src:      "input a\ninput a\ninst U1 INV y a\n",
			wantLine: "line 2",
		},
		{
			name:     "duplicate input within one directive",
			src:      "input a a\ninst U1 INV y a\n",
			wantLine: "line 1",
		},
		{
			name:     "duplicate instance name",
			src:      "input a\ninst U1 INV n1 a\ninst U1 INV n2 a\n",
			wantLine: "line 3",
		},
		{
			name:     "net driven twice",
			src:      "input a\ninst U1 INV n1 a\ninst U2 INV n1 a\n",
			wantLine: "line 3",
		},
		{
			name:     "inst output redefines primary input",
			src:      "input a b\ninst U1 INV a b\n",
			wantLine: "line 2",
		},
		{
			name:     "primary input redefines inst output",
			src:      "input a\ninst U1 INV n1 a\ninput n1\n",
			wantLine: "line 3",
		},
	}
	for _, c := range cases {
		_, err := sta.ParseNetlist(strings.NewReader(c.src))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantLine) {
			t.Errorf("%s: error %q does not name %s", c.name, err, c.wantLine)
		}
	}
}

func TestLevelize(t *testing.T) {
	nl, _ := sta.ParseNetlist(strings.NewReader(demoNetlist))
	order, err := nl.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || nl.Instances[order[0]].Name != "U1" {
		t.Errorf("order = %v", order)
	}
	// Loop detection.
	loop := `
input a
output y
inst U1 NOR2 n1 a n2
inst U2 INV n2 n1
`
	nl2, _ := sta.ParseNetlist(strings.NewReader(loop))
	if _, err := nl2.Levelize(); err == nil {
		t.Error("loop accepted")
	}
	// Multiple drivers (constructed in code: ParseNetlist now rejects this
	// at parse time, but Levelize must still guard programmatic netlists).
	nl3 := &sta.Netlist{
		PrimaryIn: []string{"a"},
		Instances: []sta.Instance{
			{Name: "U1", Type: "INV", Output: "n1", Inputs: []string{"a"}},
			{Name: "U2", Type: "INV", Output: "n1", Inputs: []string{"a"}},
		},
	}
	if _, err := nl3.Levelize(); err == nil {
		t.Error("duplicate driver accepted")
	}
	// Undriven net.
	und := `
input a
inst U1 NOR2 n1 a floating
`
	nl4, _ := sta.ParseNetlist(strings.NewReader(und))
	if _, err := nl4.Levelize(); err == nil {
		t.Error("undriven net accepted")
	}
	// Primary input that is also instance-driven: evaluation order would
	// decide which waveform consumers see, so it must be rejected (by both
	// Levelize and Levels, which share the validation; ParseNetlist catches
	// the textual form earlier with a line number).
	nl5 := &sta.Netlist{
		PrimaryIn: []string{"n1", "n2"},
		Instances: []sta.Instance{
			{Name: "U1", Type: "INV", Output: "n1", Inputs: []string{"n2"}},
			{Name: "U2", Type: "INV", Output: "n3", Inputs: []string{"n1"}},
		},
	}
	if _, err := nl5.Levelize(); err == nil {
		t.Error("driven primary input accepted by Levelize")
	}
	if _, err := nl5.Levels(); err == nil {
		t.Error("driven primary input accepted by Levels")
	}
}

// TestLevelsEdgeCases covers the scheduler-facing contract of Levels on
// inputs the c17-shaped happy path never exercises: combinational cycles,
// dangling/undriven internal nets, and primary inputs fanning out to
// several levels at once.
func TestLevelsEdgeCases(t *testing.T) {
	// Combinational cycle: U1 and U2 feed each other.
	cyc := `
input a
output y
inst U1 NAND2 n1 a n2
inst U2 INV n2 n1
inst U3 INV y n1
`
	nl, err := sta.ParseNetlist(strings.NewReader(cyc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Levels(); err == nil {
		t.Error("Levels accepted a combinational loop")
	} else if !strings.Contains(err.Error(), "loop") {
		t.Errorf("loop error = %q, want mention of the loop", err)
	}

	// Self-loop: an instance consuming its own output.
	self := `
input a
inst U1 NAND2 n1 a n1
`
	nl, err = sta.ParseNetlist(strings.NewReader(self))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Levels(); err == nil {
		t.Error("Levels accepted a self-loop")
	}

	// Dangling internal net: n2 has no driver and is not a primary input.
	dangling := `
input a
inst U1 INV n1 a
inst U2 NAND2 y n1 n2
`
	nl, err = sta.ParseNetlist(strings.NewReader(dangling))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Levels(); err == nil {
		t.Error("Levels accepted an undriven internal net")
	} else if !strings.Contains(err.Error(), "n2") {
		t.Errorf("undriven-net error = %q, want mention of n2", err)
	}

	// Multi-fanout primary input: a feeds instances at level 0 and deeper
	// levels directly. Level placement is by deepest *instance* driver, so
	// U2 (a, n1) sits at level 1 and U3 (a, n2) at level 2 even though both
	// also consume the level-0 net a.
	fan := `
input a
output y
inst U1 INV n1 a
inst U2 NAND2 n2 a n1
inst U3 NAND2 y a n2
`
	nl, err = sta.ParseNetlist(strings.NewReader(fan))
	if err != nil {
		t.Fatal(err)
	}
	levels, err := nl.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	for li, want := range []string{"U1", "U2", "U3"} {
		if len(levels[li]) != 1 || nl.Instances[levels[li][0]].Name != want {
			t.Errorf("level %d = %v, want [%s]", li, levels[li], want)
		}
	}
	// Concatenated levels must form a topological order.
	seen := map[string]bool{"a": true}
	for _, lvl := range levels {
		for _, idx := range lvl {
			for _, in := range nl.Instances[idx].Inputs {
				if !seen[in] {
					t.Errorf("instance %s consumes %s before it is driven", nl.Instances[idx].Name, in)
				}
			}
		}
		for _, idx := range lvl {
			seen[nl.Instances[idx].Output] = true
		}
	}
}

// TestAnalyzeMatchesFlat validates the CSM-based propagation against the
// flat transistor-level simulation of the same two-stage netlist.
func TestAnalyzeMatchesFlat(t *testing.T) {
	tech := testutil.Tech()
	models := testutil.FastModels(t)
	nl, _ := sta.ParseNetlist(strings.NewReader(demoNetlist))
	vdd := tech.Vdd
	primary := map[string]wave.Waveform{
		"a": wave.SaturatedRamp(vdd, 0, 1.0e-9, 80e-12, 4e-9),
		"b": wave.SaturatedRamp(vdd, 0, 1.05e-9, 80e-12, 4e-9),
	}
	opt := sta.Options{Horizon: 4e-9}
	rep, err := sta.Analyze(nl, models, primary, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sta.FlatReference(nl, tech, primary, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []string{"n1", "y"} {
		got := rep.Nets[net]
		want := ref.Nets[net]
		if math.IsNaN(got.Arrival) || math.IsNaN(want.Arrival) {
			t.Fatalf("net %s has no arrival (got %v, ref %v)", net, got.Arrival, want.Arrival)
		}
		testutil.RequireArrivalClose(t, net, got.Arrival, want.Arrival, 6e-12)
		if got.Rising != want.Rising {
			t.Errorf("net %s direction mismatch", net)
		}
	}
	// The NOR2 saw both inputs switching: a MIS event must be reported.
	if len(rep.MISInstances) != 1 || rep.MISInstances[0] != "U1" {
		t.Errorf("MIS instances = %v, want [U1]", rep.MISInstances)
	}
}

// TestSISMispredictsMIS demonstrates the intro/[6] failure mode: under a
// genuine MIS event (overlapping input transitions at a NOR2), the
// conventional SIS assumption — each arc evaluated with the other input at
// its non-controlling level — mispredicts the stage arrival by an order of
// magnitude more than the MIS-aware analysis. (The error's sign is arc- and
// technology-dependent; what is robust is that MIS-aware propagation tracks
// the flat transistor truth and SIS does not.)
func TestSISMispredictsMIS(t *testing.T) {
	tech := testutil.Tech()
	models := testutil.FastModels(t)
	norNetlist := `
input a b
output n1
inst U1 NOR2 n1 a b
`
	nl, err := sta.ParseNetlist(strings.NewReader(norNetlist))
	if err != nil {
		t.Fatal(err)
	}
	vdd := tech.Vdd
	// Overlapping transitions: b arrives mid-slew of a.
	primary := map[string]wave.Waveform{
		"a": wave.SaturatedRamp(vdd, 0, 1.00e-9, 80e-12, 4e-9),
		"b": wave.SaturatedRamp(vdd, 0, 1.04e-9, 80e-12, 4e-9),
	}
	mis, err := sta.Analyze(nl, models, primary, sta.Options{Mode: sta.ModeMIS, Horizon: 4e-9})
	if err != nil {
		t.Fatal(err)
	}
	sis, err := sta.Analyze(nl, models, primary, sta.Options{Mode: sta.ModeSIS, Horizon: 4e-9})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := sta.FlatReference(nl, tech, primary, sta.Options{Horizon: 4e-9})
	if err != nil {
		t.Fatal(err)
	}
	aRef := flat.Nets["n1"].Arrival
	aMIS := mis.Nets["n1"].Arrival
	aSIS := sis.Nets["n1"].Arrival
	errMIS := math.Abs(aMIS - aRef)
	errSIS := math.Abs(aSIS - aRef)
	t.Logf("n1 arrival: flat %.2fps, MIS-STA %.2fps (err %.2fps), SIS-STA %.2fps (err %.2fps)",
		aRef*1e12, aMIS*1e12, errMIS*1e12, aSIS*1e12, errSIS*1e12)
	if errMIS > 2e-12 {
		t.Errorf("MIS-aware analysis off by %.2fps from flat truth", errMIS*1e12)
	}
	if errSIS < 3e-12 {
		t.Errorf("SIS assumption unexpectedly accurate (%.2fps) — the MIS event should break it", errSIS*1e12)
	}
	if errSIS < 2*errMIS {
		t.Errorf("SIS error %.2fps not clearly worse than MIS %.2fps", errSIS*1e12, errMIS*1e12)
	}
	if len(mis.MISInstances) != 1 || mis.MISInstances[0] != "U1" {
		t.Errorf("MIS instances = %v, want [U1]", mis.MISInstances)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	models := testutil.FastModels(t)
	nl, _ := sta.ParseNetlist(strings.NewReader(demoNetlist))
	primary := map[string]wave.Waveform{
		"a": wave.Constant(0, 0, 1e-9),
		// "b" missing
	}
	if _, err := sta.Analyze(nl, models, primary, sta.Options{}); err == nil {
		t.Error("missing primary waveform accepted")
	}
	if _, err := sta.Analyze(nl, map[string]*csm.Model{}, primary, sta.Options{}); err == nil {
		t.Error("empty model set accepted")
	}
	// Unknown cell type.
	bad := `
input a
inst U1 XOR9 n1 a
`
	nlBad, _ := sta.ParseNetlist(strings.NewReader(bad))
	if _, err := sta.Analyze(nlBad, models, primary, sta.Options{}); err == nil {
		t.Error("unknown cell type accepted")
	}
}

func TestFanouts(t *testing.T) {
	nl, _ := sta.ParseNetlist(strings.NewReader(demoNetlist))
	fo := nl.Fanouts()
	if len(fo["n1"]) != 1 || fo["n1"][0][0] != 1 || fo["n1"][0][1] != 0 {
		t.Errorf("fanouts of n1: %v", fo["n1"])
	}
	if len(fo["a"]) != 1 {
		t.Errorf("fanouts of a: %v", fo["a"])
	}
}

func TestCriticalPath(t *testing.T) {
	tech := testutil.Tech()
	models := testutil.FastModels(t)
	nl, _ := sta.ParseNetlist(strings.NewReader(demoNetlist))
	vdd := tech.Vdd
	primary := map[string]wave.Waveform{
		"a": wave.SaturatedRamp(vdd, 0, 1.00e-9, 80e-12, 4e-9),
		"b": wave.SaturatedRamp(vdd, 0, 1.10e-9, 80e-12, 4e-9), // later
	}
	rep, err := sta.Analyze(nl, models, primary, sta.Options{Horizon: 4e-9})
	if err != nil {
		t.Fatal(err)
	}
	out, arr, ok := rep.WorstOutput(nl)
	if !ok || out != "y" {
		t.Fatalf("worst output = %q ok=%v", out, ok)
	}
	if arr < 1e-9 {
		t.Errorf("worst arrival %g implausible", arr)
	}
	path := rep.CriticalPath(nl, "y")
	if len(path) != 3 {
		t.Fatalf("path length = %d (%v), want 3", len(path), path)
	}
	// The later input (b) dominates the path.
	if path[0].Net != "b" || path[0].Instance != "" {
		t.Errorf("path head = %+v, want primary input b", path[0])
	}
	if path[1].Net != "n1" || path[1].Instance != "U1" {
		t.Errorf("path[1] = %+v", path[1])
	}
	if path[2].Net != "y" || path[2].Instance != "U2" {
		t.Errorf("path[2] = %+v", path[2])
	}
	// Arrivals increase along the path.
	for i := 1; i < len(path); i++ {
		if !(path[i].Arrival > path[i-1].Arrival) {
			t.Errorf("arrival not increasing at %d: %v", i, path)
		}
	}
}
