// Package sta is a small waveform-based static timing engine: the
// application context of the paper (§1). Cells are characterized CSMs;
// stage outputs are computed by full waveform simulation and propagated
// net by net, so arbitrary waveform shapes (noisy inputs, glitches, MIS
// events) survive across stages — unlike the saturated-ramp abstraction of
// conventional STA.
//
// Two propagation modes exist:
//
//   - ModeMIS (default): all of a cell's switching inputs drive one stage
//     simulation together, capturing simultaneous switching.
//   - ModeSIS: the conventional single-input-switching assumption — each
//     input is simulated alone with the other inputs parked at their
//     settled values and the worst arc wins. Reference [6]'s
//     underestimation failure is directly observable in this mode.
//
// A flat transistor-level reference (FlatReference) elaborates the same
// netlist in one circuit for validation.
package sta

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Instance is one placed cell in the netlist. Inputs are net names in the
// catalog pin order of the cell type.
type Instance struct {
	Name   string
	Type   string
	Inputs []string
	Output string
}

// Netlist is a gate-level combinational netlist.
//
// Levels and Fanouts memoize their results on the netlist (computed once,
// shared by every analysis of the same parsed workload); a consumer that
// mutates Instances — the incremental timing graph's edit ops — must call
// InvalidateTopology afterwards. Because of the embedded cache a Netlist
// must not be copied by value; use Clone for a mutable private copy.
type Netlist struct {
	Instances  []Instance
	PrimaryIn  []string
	PrimaryOut []string
	NetCap     map[string]float64 // additional wire capacitance per net

	topo topoCache
}

// topoCache memoizes the derived topology views. The mutex makes the lazy
// fills safe under the service's concurrent analyses of one shared
// workload.
type topoCache struct {
	mu        sync.Mutex
	levels    [][]int
	levelsErr error
	levelsOK  bool
	fanouts   map[string][][2]int
}

// InvalidateTopology drops the memoized Levels/Fanouts views. Call after
// any structural mutation (instance input rewiring, type swaps do not
// change topology but rewires do). Net capacitance edits do not require
// invalidation — NetCap is not part of either view.
func (nl *Netlist) InvalidateTopology() {
	nl.topo.mu.Lock()
	nl.topo.levels, nl.topo.levelsErr, nl.topo.levelsOK = nil, nil, false
	nl.topo.fanouts = nil
	nl.topo.mu.Unlock()
}

// Clone returns a deep copy of the netlist (instances, pin slices, net
// caps) with an empty topology cache — the private mutable copy the
// incremental timing graph edits in place without disturbing the shared
// parsed workload.
func (nl *Netlist) Clone() *Netlist {
	cp := &Netlist{
		Instances:  make([]Instance, len(nl.Instances)),
		PrimaryIn:  append([]string(nil), nl.PrimaryIn...),
		PrimaryOut: append([]string(nil), nl.PrimaryOut...),
		NetCap:     make(map[string]float64, len(nl.NetCap)),
	}
	for i, inst := range nl.Instances {
		inst.Inputs = append([]string(nil), inst.Inputs...)
		cp.Instances[i] = inst
	}
	for net, c := range nl.NetCap {
		cp.NetCap[net] = c
	}
	return cp
}

// ParseNetlist reads the tiny line-based netlist format:
//
//	# comment
//	input a b
//	output y
//	cap n1 2e-15
//	inst U1 NOR2 n1 a b     (name type output inputs…)
//
// Redefinitions are rejected with line-numbered errors: a net may be
// declared a primary input at most once, an instance name may be used at
// most once, and a net may be driven at most once (by either an instance
// output or a primary-input declaration, in either order).
func ParseNetlist(r io.Reader) (*Netlist, error) {
	nl := &Netlist{NetCap: map[string]float64{}}
	inputAt := map[string]int{}  // net -> line of its input declaration
	driverOf := map[string]int{} // net -> index of the driving instance
	instAt := map[string]int{}   // instance name -> line of its definition
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "input":
			for _, net := range fields[1:] {
				if prev, dup := inputAt[net]; dup {
					return nil, fmt.Errorf("sta: line %d: primary input %q already declared on line %d", lineNo, net, prev)
				}
				if d, dup := driverOf[net]; dup {
					return nil, fmt.Errorf("sta: line %d: primary input %q is already driven by instance %s", lineNo, net, nl.Instances[d].Name)
				}
				inputAt[net] = lineNo
				nl.PrimaryIn = append(nl.PrimaryIn, net)
			}
		case "output":
			nl.PrimaryOut = append(nl.PrimaryOut, fields[1:]...)
		case "cap":
			if len(fields) != 3 {
				return nil, fmt.Errorf("sta: line %d: cap needs net and value", lineNo)
			}
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sta: line %d: bad capacitance %q", lineNo, fields[2])
			}
			nl.NetCap[fields[1]] = v
		case "inst":
			if len(fields) < 5 {
				return nil, fmt.Errorf("sta: line %d: inst needs name type output inputs…", lineNo)
			}
			name, out := fields[1], fields[3]
			if prev, dup := instAt[name]; dup {
				return nil, fmt.Errorf("sta: line %d: instance %s already defined on line %d", lineNo, name, prev)
			}
			if d, dup := driverOf[out]; dup {
				return nil, fmt.Errorf("sta: line %d: net %q already driven by instance %s", lineNo, out, nl.Instances[d].Name)
			}
			if prev, dup := inputAt[out]; dup {
				return nil, fmt.Errorf("sta: line %d: net %q driven by %s was declared a primary input on line %d", lineNo, out, name, prev)
			}
			instAt[name] = lineNo
			driverOf[out] = len(nl.Instances)
			nl.Instances = append(nl.Instances, Instance{
				Name:   name,
				Type:   fields[2],
				Output: out,
				Inputs: fields[4:],
			})
		default:
			return nil, fmt.Errorf("sta: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(nl.Instances) == 0 {
		return nil, fmt.Errorf("sta: empty netlist")
	}
	return nl, nil
}

// Levelize returns instance indices in topological order (every instance
// after all drivers of its input nets). It rejects combinational loops and
// nets with multiple drivers.
func (nl *Netlist) Levelize() ([]int, error) {
	driver := map[string]int{} // net -> instance index
	for i, inst := range nl.Instances {
		if d, dup := driver[inst.Output]; dup {
			return nil, fmt.Errorf("sta: net %q driven by both %s and %s",
				inst.Output, nl.Instances[d].Name, inst.Name)
		}
		driver[inst.Output] = i
	}
	primary := map[string]bool{}
	for _, n := range nl.PrimaryIn {
		primary[n] = true
	}
	// A net that is both a primary input and instance-driven is rejected:
	// consumers would see the primary waveform or the driver's output
	// depending on evaluation order, so no schedule could be well-defined.
	for _, inst := range nl.Instances {
		if primary[inst.Output] {
			return nil, fmt.Errorf("sta: net %q driven by %s is also declared a primary input",
				inst.Output, inst.Name)
		}
	}

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int, len(nl.Instances))
	var order []int
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("sta: combinational loop through %s", nl.Instances[i].Name)
		}
		state[i] = visiting
		for _, net := range nl.Instances[i].Inputs {
			if primary[net] {
				continue
			}
			d, ok := driver[net]
			if !ok {
				return fmt.Errorf("sta: net %q of %s has no driver and is not a primary input",
					net, nl.Instances[i].Name)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[i] = done
		order = append(order, i)
		return nil
	}
	for i := range nl.Instances {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Levels groups the instances into topological levels: level k holds every
// instance whose deepest driving instance sits at level k−1 (instances fed
// only by primary inputs are level 0). Instances within one level are
// mutually independent — none consumes another's output — so a scheduler
// may evaluate them concurrently. Indices within each level are in
// ascending instance order, and the concatenation of all levels is a valid
// topological order. Levels shares Levelize's validation (loops, multiple
// drivers, undriven nets).
//
// The result is computed once and memoized on the netlist (see
// InvalidateTopology); callers share the backing slices and must not
// mutate them.
func (nl *Netlist) Levels() ([][]int, error) {
	nl.topo.mu.Lock()
	defer nl.topo.mu.Unlock()
	if nl.topo.levelsOK {
		return nl.topo.levels, nl.topo.levelsErr
	}
	levels, err := nl.computeLevels()
	nl.topo.levels, nl.topo.levelsErr, nl.topo.levelsOK = levels, err, true
	return levels, err
}

func (nl *Netlist) computeLevels() ([][]int, error) {
	order, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	driver := map[string]int{}
	for i, inst := range nl.Instances {
		driver[inst.Output] = i
	}
	primary := map[string]bool{}
	for _, n := range nl.PrimaryIn {
		primary[n] = true
	}
	depth := make([]int, len(nl.Instances))
	maxDepth := 0
	for _, idx := range order { // topological: drivers resolved first
		d := 0
		for _, net := range nl.Instances[idx].Inputs {
			if primary[net] {
				continue
			}
			if di, ok := driver[net]; ok && depth[di]+1 > d {
				d = depth[di] + 1
			}
		}
		depth[idx] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]int, maxDepth+1)
	for i := range nl.Instances {
		levels[depth[i]] = append(levels[depth[i]], i)
	}
	return levels, nil
}

// Fanouts returns, for each net, the (instance index, pin index) pairs that
// load it. Like Levels, the map is memoized on the netlist and shared —
// callers must not mutate it.
func (nl *Netlist) Fanouts() map[string][][2]int {
	nl.topo.mu.Lock()
	defer nl.topo.mu.Unlock()
	if nl.topo.fanouts != nil {
		return nl.topo.fanouts
	}
	nl.topo.fanouts = nl.computeFanouts()
	return nl.topo.fanouts
}

func (nl *Netlist) computeFanouts() map[string][][2]int {
	out := map[string][][2]int{}
	for i, inst := range nl.Instances {
		for p, net := range inst.Inputs {
			out[net] = append(out[net], [2]int{i, p})
		}
	}
	return out
}
