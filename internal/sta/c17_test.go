package sta_test

import (
	"math"
	"testing"

	"mcsm/internal/sta"
	"mcsm/internal/testutil"
)

// TestC17EndToEnd is the full-flow integration test: parse, levelize,
// propagate with MIS-aware CSM stages, and validate every switching net
// against the flat transistor-level simulation of the whole benchmark.
// It runs on the canonical c17 fixture (sta.C17Netlist/C17Stimulus) at
// the full-resolution default step.
func TestC17EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("c17 flat reference in short mode")
	}
	tech := testutil.Tech()
	models := testutil.FastModels(t)
	nl, primary, opt := testutil.C17Fixture(t)
	opt.Dt = 0 // default 1 ps: this test is about accuracy vs the flat truth
	order, err := nl.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("levelized %d instances", len(order))
	}

	rep, err := sta.Analyze(nl, models, primary, opt)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := sta.FlatReference(nl, tech, primary, opt)
	if err != nil {
		t.Fatal(err)
	}

	// G10 sees both of its inputs switching: a MIS event must be flagged.
	foundMIS := false
	for _, inst := range rep.MISInstances {
		if inst == "G10" {
			foundMIS = true
		}
	}
	if !foundMIS {
		t.Errorf("MIS instances %v missing G10", rep.MISInstances)
	}

	checked := 0
	for _, net := range []string{"n10", "n11", "n16", "n19", "n22", "n23"} {
		gotArr := rep.Nets[net].Arrival
		refArr := flat.Nets[net].Arrival
		if math.IsNaN(refArr) && math.IsNaN(gotArr) {
			continue // both agree the net never switches
		}
		testutil.RequireArrivalClose(t, net, gotArr, refArr, 6e-12)
		checked++
	}
	if checked < 3 {
		t.Errorf("only %d nets switched — stimulus too weak for an integration test", checked)
	}

	// Critical path to the worst output must start at a primary input and
	// have increasing arrivals.
	out, _, ok := rep.WorstOutput(nl)
	if !ok {
		t.Fatal("no switching primary output")
	}
	path := rep.CriticalPath(nl, out)
	if len(path) < 3 {
		t.Fatalf("critical path too short: %v", path)
	}
	if path[0].Instance != "" {
		t.Errorf("path does not start at a primary input: %+v", path[0])
	}
	t.Logf("c17: %d nets checked; worst output %s; path length %d; MIS at %v",
		checked, out, len(path), rep.MISInstances)
}
