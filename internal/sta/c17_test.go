package sta

import (
	"math"
	"strings"
	"testing"

	"mcsm/internal/cells"
	"mcsm/internal/wave"
)

// c17Netlist is ISCAS85's smallest benchmark: six NAND2 gates with
// reconvergent fanout.
const c17Netlist = `
input n1 n2 n3 n6 n7
output n22 n23
inst G10 NAND2 n10 n1 n3
inst G11 NAND2 n11 n3 n6
inst G16 NAND2 n16 n2 n11
inst G19 NAND2 n19 n11 n7
inst G22 NAND2 n22 n10 n16
inst G23 NAND2 n23 n16 n19
`

// TestC17EndToEnd is the full-flow integration test: parse, levelize,
// propagate with MIS-aware CSM stages, and validate every switching net
// against the flat transistor-level simulation of the whole benchmark.
func TestC17EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("c17 flat reference in short mode")
	}
	tech := cells.Default130()
	models := testModels(t)
	nl, err := ParseNetlist(strings.NewReader(c17Netlist))
	if err != nil {
		t.Fatal(err)
	}
	order, err := nl.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("levelized %d instances", len(order))
	}

	vdd := tech.Vdd
	horizon := 4e-9
	primary := map[string]wave.Waveform{
		"n1": wave.SaturatedRamp(0, vdd, 1.00e-9, 80e-12, horizon),
		"n2": wave.Constant(vdd, 0, horizon),
		"n3": wave.SaturatedRamp(0, vdd, 1.05e-9, 80e-12, horizon),
		"n6": wave.Constant(vdd, 0, horizon),
		"n7": wave.Constant(0, 0, horizon),
	}
	opt := Options{Horizon: horizon}
	rep, err := Analyze(nl, models, primary, opt)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := FlatReference(nl, tech, primary, opt)
	if err != nil {
		t.Fatal(err)
	}

	// G10 sees both of its inputs switching: a MIS event must be flagged.
	foundMIS := false
	for _, inst := range rep.MISInstances {
		if inst == "G10" {
			foundMIS = true
		}
	}
	if !foundMIS {
		t.Errorf("MIS instances %v missing G10", rep.MISInstances)
	}

	checked := 0
	for _, net := range []string{"n10", "n11", "n16", "n19", "n22", "n23"} {
		gotArr := rep.Nets[net].Arrival
		refArr := flat.Nets[net].Arrival
		switch {
		case math.IsNaN(refArr) && math.IsNaN(gotArr):
			continue // both agree the net never switches
		case math.IsNaN(refArr) != math.IsNaN(gotArr):
			t.Errorf("net %s: switching disagreement (csm %v, flat %v)", net, gotArr, refArr)
			continue
		}
		if d := math.Abs(gotArr - refArr); d > 6e-12 {
			t.Errorf("net %s arrival differs by %.2fps (csm %.2f, flat %.2f)",
				net, d*1e12, gotArr*1e12, refArr*1e12)
		}
		checked++
	}
	if checked < 3 {
		t.Errorf("only %d nets switched — stimulus too weak for an integration test", checked)
	}

	// Critical path to the worst output must start at a primary input and
	// have increasing arrivals.
	out, _, ok := rep.WorstOutput(nl)
	if !ok {
		t.Fatal("no switching primary output")
	}
	path := rep.CriticalPath(nl, out)
	if len(path) < 3 {
		t.Fatalf("critical path too short: %v", path)
	}
	if path[0].Instance != "" {
		t.Errorf("path does not start at a primary input: %+v", path[0])
	}
	t.Logf("c17: %d nets checked; worst output %s; path length %d; MIS at %v",
		checked, out, len(path), rep.MISInstances)
}
