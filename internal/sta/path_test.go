package sta_test

import (
	"math"
	"strings"
	"testing"

	"mcsm/internal/sta"
	"mcsm/internal/wave"
)

// Table tests for the report-tracing helpers against the report shapes
// the incremental layer produces: delta reports carry only the changed
// subset of nets (a net "removed" from view by a Rewire), endpoints may
// never switch (NaN arrivals), and hand-assembled netlists may even be
// cyclic — none of which may panic or hang the tracer.

// pathNetlist parses a small reconvergent netlist for the table.
func pathNetlist(t *testing.T, src string) *sta.Netlist {
	t.Helper()
	nl, err := sta.ParseNetlist(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// mkReport builds a report holding exactly the given net arrivals (NaN =
// present but never switching).
func mkReport(arrivals map[string]float64) *sta.Report {
	rep := &sta.Report{Vdd: 1.2, Nets: map[string]sta.NetResult{}}
	for net, arr := range arrivals {
		rep.Nets[net] = sta.NetResult{Arrival: arr, Wave: wave.Constant(0, 0, 1e-9)}
	}
	return rep
}

func TestCriticalPathEditedReports(t *testing.T) {
	const src = `
input a b
output y
inst U1 NAND2 n1 a b
inst U2 INV n2 n1
inst U3 NAND2 y n1 n2
`
	nl := pathNetlist(t, src)

	cases := []struct {
		name     string
		arrivals map[string]float64
		end      string
		wantNets []string
	}{
		{
			name:     "full report traces source to sink",
			arrivals: map[string]float64{"a": 1, "b": 2, "n1": 3, "n2": 4, "y": 5},
			end:      "y",
			wantNets: []string{"b", "n1", "n2", "y"},
		},
		{
			name: "delta report with intermediate net missing stops early",
			// n1 was dropped from view (e.g. a Rewire moved the cone and
			// the delta only re-measured downstream nets).
			arrivals: map[string]float64{"a": 1, "b": 2, "n2": 4, "y": 5},
			end:      "y",
			wantNets: []string{"n2", "y"},
		},
		{
			name:     "unknown endpoint yields empty path",
			arrivals: map[string]float64{"a": 1},
			end:      "nope",
			wantNets: nil,
		},
		{
			name: "non-switching endpoint still anchors the trace",
			// y never switches (NaN); its latest-arriving input leads on.
			arrivals: map[string]float64{"a": 1, "b": 2, "n1": 3, "n2": 4, "y": math.NaN()},
			end:      "y",
			wantNets: []string{"b", "n1", "n2", "y"},
		},
		{
			name: "all inputs non-switching terminates at the gate",
			arrivals: map[string]float64{
				"a": math.NaN(), "b": math.NaN(), "n1": math.NaN(),
				"n2": math.NaN(), "y": 5,
			},
			end:      "y",
			wantNets: []string{"y"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := mkReport(tc.arrivals).CriticalPath(nl, tc.end)
			var nets []string
			for _, step := range path {
				nets = append(nets, step.Net)
			}
			if len(nets) != len(tc.wantNets) {
				t.Fatalf("path %v, want nets %v", nets, tc.wantNets)
			}
			for i := range nets {
				if nets[i] != tc.wantNets[i] {
					t.Fatalf("path %v, want nets %v", nets, tc.wantNets)
				}
			}
		})
	}
}

// TestCriticalPathCyclicNetlist: a cyclic netlist (constructible by hand;
// Levelize would reject it, but CriticalPath takes any netlist) must
// terminate instead of tracing the loop forever.
func TestCriticalPathCyclicNetlist(t *testing.T) {
	nl := &sta.Netlist{
		Instances: []sta.Instance{
			{Name: "U1", Type: "INV", Inputs: []string{"y"}, Output: "x"},
			{Name: "U2", Type: "INV", Inputs: []string{"x"}, Output: "y"},
		},
		PrimaryOut: []string{"y"},
	}
	rep := mkReport(map[string]float64{"x": 1, "y": 2})
	path := rep.CriticalPath(nl, "y")
	if len(path) > 2 {
		t.Fatalf("cycle not cut: path of %d steps", len(path))
	}
}

func TestWorstOutputEditedReports(t *testing.T) {
	const src = `
input a
output y z
inst U1 INV y a
inst U2 INV z a
`
	nl := pathNetlist(t, src)

	cases := []struct {
		name     string
		arrivals map[string]float64
		wantNet  string
		wantOK   bool
	}{
		{"both switch", map[string]float64{"y": 2, "z": 3}, "z", true},
		{"one output missing from the delta view", map[string]float64{"y": 2}, "y", true},
		{"non-switching output skipped", map[string]float64{"y": 2, "z": math.NaN()}, "y", true},
		{"no output switches", map[string]float64{"y": math.NaN(), "z": math.NaN()}, "", false},
		{"empty report", map[string]float64{}, "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, arr, ok := mkReport(tc.arrivals).WorstOutput(nl)
			if ok != tc.wantOK || net != tc.wantNet {
				t.Fatalf("WorstOutput = (%q, %g, %t), want (%q, _, %t)", net, arr, ok, tc.wantNet, tc.wantOK)
			}
		})
	}
}

// TestTopologyCaching pins the memoization contract of Levels/Fanouts:
// repeat calls return the identical backing structures (no recompute),
// InvalidateTopology forces a rebuild that reflects mutations, Clone
// starts with a cache of its own, and concurrent fills are race-safe
// (this test runs under -race in CI).
func TestTopologyCaching(t *testing.T) {
	nl := pathNetlist(t, `
input a b
output y
inst U1 NAND2 n1 a b
inst U2 INV y n1
`)
	l1, err := nl.Levels()
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := nl.Levels()
	if &l1[0] != &l2[0] {
		t.Error("Levels recomputed despite a warm cache")
	}
	f1 := nl.Fanouts()
	if f2 := nl.Fanouts(); len(f1) != len(f2) {
		t.Error("Fanouts changed between cached calls")
	}

	// A clone edits independently: rewiring U2 to read "a" drops n1's
	// fanout and flattens the levels — but only on the clone.
	cp := nl.Clone()
	cp.Instances[1].Inputs[0] = "a"
	cp.InvalidateTopology()
	cpLevels, err := cp.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(cpLevels) != 1 {
		t.Errorf("clone levels = %d, want 1 (both gates read primaries)", len(cpLevels))
	}
	if len(cp.Fanouts()["n1"]) != 0 {
		t.Error("clone fanouts still list the rewired pin")
	}
	if orig, _ := nl.Levels(); len(orig) != 2 {
		t.Errorf("original levels = %d, want 2 (clone edit leaked)", len(orig))
	}
	if len(nl.Fanouts()["n1"]) != 1 {
		t.Error("original fanouts lost the n1 pin")
	}

	// Concurrent cold fills on a fresh netlist must be race-free.
	fresh := nl.Clone()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			fresh.Levels()
			fresh.Fanouts()
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}
