package wave

import (
	"errors"
	"fmt"
	"math"
)

// Crossing records a waveform passing through a voltage level.
type Crossing struct {
	Time   float64 // interpolated crossing instant, seconds
	Rising bool    // true when the waveform moves upward through the level
}

// Crossings returns every instant at which the waveform crosses the given
// level, in time order. Samples exactly on the level are attributed to the
// segment that departs from it; flat segments on the level produce no
// crossing.
func (w Waveform) Crossings(level float64) []Crossing {
	var out []Crossing
	for i := 1; i < len(w.T); i++ {
		v0, v1 := w.V[i-1], w.V[i]
		if v0 == v1 {
			continue
		}
		// A segment crosses when the level lies strictly between the
		// endpoint values, or coincides with the leaving endpoint.
		lo, hi := math.Min(v0, v1), math.Max(v0, v1)
		if level <= lo || level > hi {
			// Allow the exact-left-endpoint case: v0 == level and segment
			// departs — count it as a crossing at the segment start.
			if v0 == level && v1 != level {
				out = append(out, Crossing{Time: w.T[i-1], Rising: v1 > v0})
			}
			continue
		}
		frac := (level - v0) / (v1 - v0)
		t := w.T[i-1] + frac*(w.T[i]-w.T[i-1])
		out = append(out, Crossing{Time: t, Rising: v1 > v0})
	}
	return out
}

// CrossTime returns the first time at or after 'after' when the waveform
// crosses level in the requested direction. The boolean result reports
// whether such a crossing exists.
func (w Waveform) CrossTime(level float64, rising bool, after float64) (float64, bool) {
	for _, c := range w.Crossings(level) {
		if c.Rising == rising && c.Time >= after {
			return c.Time, true
		}
	}
	return 0, false
}

// LastCrossTime returns the last crossing of level in the requested
// direction, or false when none exists.
func (w Waveform) LastCrossTime(level float64, rising bool) (float64, bool) {
	cs := w.Crossings(level)
	for i := len(cs) - 1; i >= 0; i-- {
		if cs[i].Rising == rising {
			return cs[i].Time, true
		}
	}
	return 0, false
}

// Delay50 computes the conventional 50% propagation delay from the input
// waveform's first crossing of vdd/2 at or after tAfter to the output
// waveform's first crossing of vdd/2 (in either direction) after the input
// event. It returns an error when either crossing is absent.
func Delay50(in, out Waveform, vdd, tAfter float64) (float64, error) {
	half := vdd / 2
	tin, ok := firstCrossAnyDir(in, half, tAfter)
	if !ok {
		return 0, errors.New("wave: input never crosses 50% level")
	}
	tout, ok := firstCrossAnyDir(out, half, tin)
	if !ok {
		return 0, errors.New("wave: output never crosses 50% level after input event")
	}
	return tout - tin, nil
}

// OutputCross50 returns the output's first vdd/2 crossing in the given
// direction at or after tAfter. It is the building block for delay
// measurements when the input reference instant is already known.
func OutputCross50(out Waveform, vdd float64, rising bool, tAfter float64) (float64, error) {
	t, ok := out.CrossTime(vdd/2, rising, tAfter)
	if !ok {
		return 0, fmt.Errorf("wave: no %s 50%% crossing after t=%g", dirName(rising), tAfter)
	}
	return t, nil
}

func dirName(rising bool) string {
	if rising {
		return "rising"
	}
	return "falling"
}

func firstCrossAnyDir(w Waveform, level, after float64) (float64, bool) {
	for _, c := range w.Crossings(level) {
		if c.Time >= after {
			return c.Time, true
		}
	}
	return 0, false
}

// TransitionTime measures the slew of the first transition after tAfter in
// the given direction, between loFrac·vdd and hiFrac·vdd (e.g. 0.1/0.9 for
// 10–90%). The returned value is positive; an error is returned when the
// waveform does not complete the transition.
func TransitionTime(w Waveform, vdd float64, rising bool, loFrac, hiFrac, tAfter float64) (float64, error) {
	if loFrac >= hiFrac {
		return 0, fmt.Errorf("wave: invalid slew fractions %g >= %g", loFrac, hiFrac)
	}
	lo := loFrac * vdd
	hi := hiFrac * vdd
	if rising {
		t0, ok := w.CrossTime(lo, true, tAfter)
		if !ok {
			return 0, errors.New("wave: no rising low-threshold crossing")
		}
		t1, ok := w.CrossTime(hi, true, t0)
		if !ok {
			return 0, errors.New("wave: no rising high-threshold crossing")
		}
		return t1 - t0, nil
	}
	t0, ok := w.CrossTime(hi, false, tAfter)
	if !ok {
		return 0, errors.New("wave: no falling high-threshold crossing")
	}
	t1, ok := w.CrossTime(lo, false, t0)
	if !ok {
		return 0, errors.New("wave: no falling low-threshold crossing")
	}
	return t1 - t0, nil
}

// RMSE computes the paper's Eq. 6 metric between a reference waveform and a
// model waveform: the root mean squared voltage difference sampled uniformly
// (n points) over [t0, t1]. Callers typically normalize the result by Vdd.
func RMSE(ref, model Waveform, t0, t1 float64, n int) float64 {
	if n < 2 || t1 <= t0 {
		return 0
	}
	var sum float64
	dt := (t1 - t0) / float64(n-1)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		d := ref.At(t) - model.At(t)
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// MaxAbsDiff returns the maximum absolute difference between two waveforms
// sampled uniformly (n points) over [t0, t1], and the time at which it
// occurs.
func MaxAbsDiff(a, b Waveform, t0, t1 float64, n int) (maxDiff, atTime float64) {
	if n < 2 || t1 <= t0 {
		return 0, t0
	}
	dt := (t1 - t0) / float64(n-1)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		d := math.Abs(a.At(t) - b.At(t))
		if d > maxDiff {
			maxDiff, atTime = d, t
		}
	}
	return maxDiff, atTime
}

// Extremum scans [t0, t1] on the waveform's own samples (plus the window
// edges) and returns the minimum and maximum values in the window.
func (w Waveform) Extremum(t0, t1 float64) (min, max float64) {
	min = math.Inf(1)
	max = math.Inf(-1)
	consider := func(v float64) {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	consider(w.At(t0))
	consider(w.At(t1))
	for i := range w.T {
		if w.T[i] >= t0 && w.T[i] <= t1 {
			consider(w.V[i])
		}
	}
	return min, max
}

// PeakValue returns the maximum value in [t0, t1] and the sample time at
// which it occurs (window edges included).
func (w Waveform) PeakValue(t0, t1 float64) (peak, atTime float64) {
	peak = math.Inf(-1)
	atTime = t0
	consider := func(v, t float64) {
		if v > peak {
			peak, atTime = v, t
		}
	}
	consider(w.At(t0), t0)
	consider(w.At(t1), t1)
	for i := range w.T {
		if w.T[i] >= t0 && w.T[i] <= t1 {
			consider(w.V[i], w.T[i])
		}
	}
	return peak, atTime
}
