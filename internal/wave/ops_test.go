package wave

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	a := MustNew([]float64{0, 2}, []float64{0, 2})
	b := MustNew([]float64{0, 1, 2}, []float64{1, 1, 1})
	sum := Add(a, b)
	if got := sum.At(1); math.Abs(got-2) > 1e-12 {
		t.Errorf("Add at 1 = %g", got)
	}
	diff := Sub(a, b)
	if got := diff.At(2); math.Abs(got-1) > 1e-12 {
		t.Errorf("Sub at 2 = %g", got)
	}
	// Merged grid contains union of sample times.
	if sum.Len() != 3 {
		t.Errorf("merged grid has %d points", sum.Len())
	}
}

func TestMergeEmpty(t *testing.T) {
	e := Waveform{}
	if got := Merge(e, e, func(a, b float64) float64 { return a + b }); !got.Empty() {
		t.Error("merge of empties not empty")
	}
}

func TestConcat(t *testing.T) {
	a := MustNew([]float64{0, 1}, []float64{0, 1})
	b := MustNew([]float64{2, 3}, []float64{5, 6})
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 || c.At(1.5) == 0 {
		t.Errorf("concat: %v", c)
	}
	// Bridging: value holds a's last value until b starts.
	if got := c.At(1.5); math.Abs(got-3) > 1e-12 {
		// Linear bridge from (1,1) to (2,5) -> 3 at 1.5.
		t.Errorf("bridge value = %g", got)
	}
	if _, err := Concat(a, a); err == nil {
		t.Error("overlapping concat accepted")
	}
	if got, err := Concat(Waveform{}, b); err != nil || got.Len() != 2 {
		t.Error("concat with empty first failed")
	}
	if got, err := Concat(a, Waveform{}); err != nil || got.Len() != 2 {
		t.Error("concat with empty second failed")
	}
}

func TestWriteCSV(t *testing.T) {
	a := MustNew([]float64{0, 1}, []float64{0, 1})
	b := MustNew([]float64{0, 0.5, 1}, []float64{1, 1, 1})
	var sb strings.Builder
	if err := WriteCSV(&sb, []string{"a", "b"}, []Waveform{a, b}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "time,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + 3 unique times
		t.Errorf("rows = %d", len(lines))
	}
	if err := WriteCSV(&sb, []string{"x"}, []Waveform{a, b}); err == nil {
		t.Error("mismatched names accepted")
	}
}

// Property: Add is commutative and Sub(a,a) is identically zero on the grid.
func TestQuickWaveAlgebra(t *testing.T) {
	f := func(raw [5]float64) bool {
		ts := []float64{0, 1, 2, 3, 4}
		vs := make([]float64, 5)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vs[i] = math.Mod(v, 1000)
		}
		a := MustNew(ts, vs)
		b := a.Scaled(0.5)
		s1 := Add(a, b)
		s2 := Add(b, a)
		for i := range s1.T {
			if math.Abs(s1.V[i]-s2.V[i]) > 1e-9 {
				return false
			}
		}
		z := Sub(a, a)
		for _, v := range z.V {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
