package wave

import (
	"math/bits"
	"sync"
)

// Sample-slice pool. Characterization runs millions of short-lived
// waveforms through measurement code; recycling their T/V backing arrays
// removes the dominant remaining allocation source once the SPICE solver
// itself is allocation-free.
//
// The pool is a set of power-of-two size-class free lists guarded by one
// mutex. A plain LIFO slice of buffers is used instead of sync.Pool: the
// hot path is single-goroutine bursts (one engine, thousands of
// get/release pairs), where sync.Pool's per-P indirection and
// interface-boxing allocation would cost more than the lock, and buffers
// must survive GC cycles mid-characterization.
//
// Ownership is explicit: GetSamples hands the caller a buffer, Release
// (or PutSamples) hands it back. Releasing a waveform whose slices are
// still referenced elsewhere is a use-after-free bug — callers must only
// release waveforms they created from pooled samples and no longer touch.

const (
	poolMinBits = 4  // smallest class: 16 samples
	poolMaxBits = 20 // largest class: 1,048,576 samples; bigger slices are not pooled
)

var samplePool struct {
	mu      sync.Mutex
	classes [poolMaxBits - poolMinBits + 1][][]float64
}

// classFor returns the free-list index for capacity c, or -1 when c is
// outside the pooled range.
func classFor(c int) int {
	if c <= 0 || c > 1<<poolMaxBits {
		return -1
	}
	b := bits.Len(uint(c - 1)) // ceil(log2(c))
	if b < poolMinBits {
		b = poolMinBits
	}
	return b - poolMinBits
}

// GetSamples returns a float64 slice of length n, drawn from the free list
// when one is available. Contents are zeroed. Slices longer than the
// largest size class are allocated fresh.
func GetSamples(n int) []float64 {
	cls := classFor(n)
	if cls < 0 {
		return make([]float64, n)
	}
	samplePool.mu.Lock()
	list := samplePool.classes[cls]
	if len(list) == 0 {
		samplePool.mu.Unlock()
		return make([]float64, n, 1<<(cls+poolMinBits))
	}
	buf := list[len(list)-1]
	samplePool.classes[cls] = list[:len(list)-1]
	samplePool.mu.Unlock()
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// PutSamples returns a slice obtained from GetSamples to the pool. Passing
// a slice the caller still uses elsewhere causes aliasing corruption; nil
// and odd-capacity (non-pooled) slices are dropped silently.
func PutSamples(s []float64) {
	c := cap(s)
	if c < 1<<poolMinBits || c > 1<<poolMaxBits || c&(c-1) != 0 {
		return // not one of ours
	}
	cls := classFor(c)
	samplePool.mu.Lock()
	if len(samplePool.classes[cls]) < 64 { // bound idle memory per class
		samplePool.classes[cls] = append(samplePool.classes[cls], s[:0])
	}
	samplePool.mu.Unlock()
}

// Release returns both sample arrays of a pooled waveform to the free list
// and clears the waveform so a stale re-release is a no-op. Only call it
// on waveforms built from GetSamples buffers (e.g. Result.AuxWavePooled);
// releasing a waveform that shares storage with a live one corrupts the
// live one.
func Release(w *Waveform) {
	if w == nil {
		return
	}
	PutSamples(w.T)
	PutSamples(w.V)
	w.T, w.V = nil, nil
}
