package wave

import (
	"math"
	"testing"
)

func TestMeasureGlitchUp(t *testing.T) {
	// Triangular bump: base 0, peak 1.0 at t=2, 50% width = 1.
	w := MustNew([]float64{0, 1, 2, 3, 4}, []float64{0, 0, 1, 0, 0})
	g := MeasureGlitch(w, 0, 0, 4)
	if math.Abs(g.Peak-1) > 1e-12 || math.Abs(g.PeakTime-2) > 1e-12 {
		t.Errorf("peak %g at %g", g.Peak, g.PeakTime)
	}
	if math.Abs(g.Height-1) > 1e-12 {
		t.Errorf("height %g", g.Height)
	}
	if math.Abs(g.Width-1) > 1e-9 {
		t.Errorf("width %g, want 1", g.Width)
	}
	// Triangle area = 1/2 · base(2) · height(1) = 1.
	if math.Abs(g.Area-1) > 0.01 {
		t.Errorf("area %g, want ≈1", g.Area)
	}
}

func TestMeasureGlitchDown(t *testing.T) {
	// Downward glitch from a high base.
	w := MustNew([]float64{0, 1, 2, 3, 4}, []float64{1.2, 1.2, 0.4, 1.2, 1.2})
	g := MeasureGlitch(w, 1.2, 0, 4)
	if math.Abs(g.Peak-0.4) > 1e-12 {
		t.Errorf("peak %g, want 0.4", g.Peak)
	}
	if math.Abs(g.Height-0.8) > 1e-12 {
		t.Errorf("height %g, want 0.8", g.Height)
	}
	if g.Width <= 0 || g.Width > 2 {
		t.Errorf("width %g", g.Width)
	}
}

func TestMeasureGlitchFlat(t *testing.T) {
	w := Constant(0.5, 0, 10)
	g := MeasureGlitch(w, 0.5, 0, 10)
	if g.Height != 0 || g.Area != 0 {
		t.Errorf("flat waveform produced glitch: %+v", g)
	}
}

func TestMeasureGlitchWindowing(t *testing.T) {
	// Two bumps; the window selects only the second.
	w := MustNew([]float64{0, 1, 2, 3, 4, 5, 6}, []float64{0, 1, 0, 0, 0.5, 0, 0})
	g := MeasureGlitch(w, 0, 3, 6)
	if math.Abs(g.Peak-0.5) > 1e-12 || math.Abs(g.PeakTime-4) > 1e-12 {
		t.Errorf("windowed peak %g at %g", g.Peak, g.PeakTime)
	}
}

// TestMeasureGlitchNoReturnCrossing: a bump that never settles back below
// the 50% level inside the window keeps the window end as its exit time.
func TestMeasureGlitchNoReturnCrossing(t *testing.T) {
	w := MustNew([]float64{0, 1, 2}, []float64{0, 1, 1})
	g := MeasureGlitch(w, 0, 0, 2)
	if g.Peak != 1 || g.Height != 1 {
		t.Fatalf("peak/height = %g/%g", g.Peak, g.Height)
	}
	// Entering crossing at 0.5, no exit: width runs to the window end.
	if math.Abs(g.Width-1.5) > 1e-9 {
		t.Errorf("width = %g, want 1.5", g.Width)
	}
	if g.Area <= 0 {
		t.Errorf("area = %g, want positive", g.Area)
	}
}

// TestMeasureGlitchDownNoCrossings: a waveform that sits entirely below
// base (no 50% crossings at all) must fall back to the full window width
// and report the minimum as the peak.
func TestMeasureGlitchDownNoCrossings(t *testing.T) {
	w := Constant(-2, 0, 4)
	g := MeasureGlitch(w, 0, 0, 4)
	if g.Peak != -2 || g.Height != 2 {
		t.Fatalf("peak/height = %g/%g", g.Peak, g.Height)
	}
	if math.Abs(g.Width-4) > 1e-9 {
		t.Errorf("width = %g, want the full window", g.Width)
	}
}
