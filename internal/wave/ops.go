package wave

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Merge evaluates fn pointwise over the union of the sample grids of a and
// b, producing a new waveform. It is the building block for waveform algebra
// such as sums and differences.
func Merge(a, b Waveform, fn func(va, vb float64) float64) Waveform {
	if a.Empty() && b.Empty() {
		return Waveform{}
	}
	grid := make([]float64, 0, len(a.T)+len(b.T))
	grid = append(grid, a.T...)
	grid = append(grid, b.T...)
	sort.Float64s(grid)
	// Deduplicate.
	ts := grid[:0]
	for i, t := range grid {
		if i == 0 || t != grid[i-1] {
			ts = append(ts, t)
		}
	}
	out := Waveform{T: make([]float64, len(ts)), V: make([]float64, len(ts))}
	copy(out.T, ts)
	for i, t := range out.T {
		out.V[i] = fn(a.At(t), b.At(t))
	}
	return out
}

// Add returns the pointwise sum a+b on the merged sample grid.
func Add(a, b Waveform) Waveform {
	return Merge(a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns the pointwise difference a-b on the merged sample grid.
func Sub(a, b Waveform) Waveform {
	return Merge(a, b, func(x, y float64) float64 { return x - y })
}

// Concat joins two waveforms in time. The second waveform must start after
// the first ends; a bridging segment holds the first waveform's final value
// until the second begins.
func Concat(a, b Waveform) (Waveform, error) {
	if a.Empty() {
		return b, nil
	}
	if b.Empty() {
		return a, nil
	}
	if b.Start() <= a.End() {
		return Waveform{}, fmt.Errorf("wave: concat overlap: second starts at %g before first ends at %g", b.Start(), a.End())
	}
	t := append(append([]float64{}, a.T...), b.T...)
	v := append(append([]float64{}, a.V...), b.V...)
	return Waveform{T: t, V: v}, nil
}

// WriteCSV writes "time,value" rows (with a header) for one or more
// waveforms sharing a merged time grid. Column names label the value
// columns. It is used by the cmd tools to export waveforms for plotting.
func WriteCSV(w io.Writer, names []string, waves []Waveform) error {
	if len(names) != len(waves) {
		return fmt.Errorf("wave: %d names for %d waveforms", len(names), len(waves))
	}
	// Union grid across all waveforms.
	var grid []float64
	for _, wf := range waves {
		grid = append(grid, wf.T...)
	}
	sort.Float64s(grid)
	ts := grid[:0]
	for i, t := range grid {
		if i == 0 || t != grid[i-1] {
			ts = append(ts, t)
		}
	}
	if _, err := fmt.Fprintf(w, "time,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	for _, t := range ts {
		row := make([]string, 0, len(waves)+1)
		row = append(row, fmt.Sprintf("%.6e", t))
		for _, wf := range waves {
			row = append(row, fmt.Sprintf("%.6e", wf.At(t)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
