package wave

import "math"

// GlitchMetrics characterizes a transient disturbance of a nominally quiet
// node relative to its base level — the standard noise-analysis view of a
// crosstalk bump or a propagated glitch.
type GlitchMetrics struct {
	Peak     float64 // the extreme value reached (above or below base)
	PeakTime float64 // when it is reached
	Height   float64 // |Peak − base|
	Width    float64 // time spent beyond base ± Height/2 (50% width)
	Area     float64 // ∫ |v − base| dt over the window, V·s
}

// MeasureGlitch analyzes the waveform in [t0, t1] against the base level.
// The dominant excursion direction (above or below base) is detected
// automatically.
func MeasureGlitch(w Waveform, base, t0, t1 float64) GlitchMetrics {
	min, max := w.Extremum(t0, t1)
	up := max - base
	down := base - min
	var g GlitchMetrics
	if up >= down {
		g.Peak, g.PeakTime = w.PeakValue(t0, t1)
	} else {
		g.Peak, g.PeakTime = minValue(w, t0, t1)
	}
	g.Height = math.Abs(g.Peak - base)
	if g.Height == 0 {
		return g
	}

	// 50% width: crossings of base ± Height/2 around the peak.
	level := base + (g.Peak-base)/2
	rising := g.Peak > base
	// Entering crossing: the last time before PeakTime the waveform crosses
	// the level toward the peak; exit: first crossing back after PeakTime.
	var tIn, tOut float64 = t0, t1
	for _, c := range w.Crossings(level) {
		if c.Time <= g.PeakTime && c.Rising == rising {
			tIn = c.Time
		}
		if c.Time >= g.PeakTime && c.Rising != rising {
			tOut = c.Time
			break
		}
	}
	g.Width = tOut - tIn

	// Area by uniform sampling (the waveforms here are densely sampled
	// simulator outputs, so 1000 points is far below their resolution).
	const n = 1000
	dt := (t1 - t0) / float64(n-1)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		g.Area += math.Abs(w.At(t)-base) * dt
	}
	return g
}

// minValue returns the minimum value in [t0, t1] and its sample time.
func minValue(w Waveform, t0, t1 float64) (min, atTime float64) {
	min = math.Inf(1)
	atTime = t0
	consider := func(v, t float64) {
		if v < min {
			min, atTime = v, t
		}
	}
	consider(w.At(t0), t0)
	consider(w.At(t1), t1)
	for i := range w.T {
		if w.T[i] >= t0 && w.T[i] <= t1 {
			consider(w.V[i], w.T[i])
		}
	}
	return min, atTime
}
