package wave

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty waveform accepted")
	}
	if _, err := New([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := New([]float64{0, 0}, []float64{0, 1}); err == nil {
		t.Error("non-increasing times accepted")
	}
	if _, err := New([]float64{0, math.NaN()}, []float64{0, 1}); err == nil {
		t.Error("NaN time accepted")
	}
	if _, err := New([]float64{0, 1}, []float64{0, math.Inf(1)}); err == nil {
		t.Error("Inf value accepted")
	}
	w, err := New([]float64{0, 1, 2}, []float64{0, 1, 0})
	if err != nil {
		t.Fatalf("valid waveform rejected: %v", err)
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestAtInterpolationAndClamping(t *testing.T) {
	w := MustNew([]float64{1, 2, 4}, []float64{0, 2, 0})
	cases := []struct{ t, want float64 }{
		{0.5, 0}, // clamp before start
		{1, 0},   // exact sample
		{1.5, 1}, // mid-segment
		{2, 2},   // exact sample
		{3, 1},   // mid-segment, downward
		{4, 0},   // last sample
		{10, 0},  // clamp after end
		{1.25, 0.5},
	}
	for _, c := range cases {
		if got := w.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestSaturatedRamp(t *testing.T) {
	w := SaturatedRamp(0, 1.2, 1e-9, 100e-12, 3e-9)
	if v := w.At(0.5e-9); v != 0 {
		t.Errorf("before ramp: %g", v)
	}
	if v := w.At(1.05e-9); math.Abs(v-0.6) > 1e-9 {
		t.Errorf("mid ramp: %g, want 0.6", v)
	}
	if v := w.At(2e-9); v != 1.2 {
		t.Errorf("after ramp: %g", v)
	}
	if w.End() != 3e-9 {
		t.Errorf("End = %g", w.End())
	}
	// Falling ramp.
	f := SaturatedRamp(1.2, 0, 1e-9, 100e-12, 3e-9)
	if v := f.At(1.05e-9); math.Abs(v-0.6) > 1e-9 {
		t.Errorf("falling mid ramp: %g", v)
	}
}

func TestPulse(t *testing.T) {
	p := Pulse(0, 1.2, 1e-9, 50e-12, 100e-12, 50e-12, 2e-9)
	if v := p.At(0); v != 0 {
		t.Errorf("base before: %g", v)
	}
	if v := p.At(1.05e-9 + 50e-12); math.Abs(v-1.2) > 1e-9 {
		t.Errorf("peak: %g", v)
	}
	if v := p.At(1.9e-9); v != 0 {
		t.Errorf("base after: %g", v)
	}
	// Zero-width pulse still valid.
	z := Pulse(0, 1, 0, 10e-12, 0, 10e-12, 1e-9)
	if v := z.At(10e-12); math.Abs(v-1) > 1e-9 {
		t.Errorf("zero-width peak: %g", v)
	}
}

func TestShiftScaleOffset(t *testing.T) {
	w := MustNew([]float64{0, 1}, []float64{0, 2})
	s := w.Shifted(10)
	if s.Start() != 10 || s.End() != 11 {
		t.Errorf("Shifted span [%g,%g]", s.Start(), s.End())
	}
	if got := w.Scaled(3).At(1); got != 6 {
		t.Errorf("Scaled = %g", got)
	}
	if got := w.Offset(1).At(0); got != 1 {
		t.Errorf("Offset = %g", got)
	}
	// Original untouched.
	if w.At(1) != 2 || w.Start() != 0 {
		t.Error("ops mutated the original")
	}
}

func TestResampledAndWindow(t *testing.T) {
	w := MustNew([]float64{0, 10}, []float64{0, 10})
	r := w.Resampled(0, 10, 2.5)
	if r.Len() != 5 {
		t.Fatalf("Resampled len = %d, want 5", r.Len())
	}
	for i, tt := range r.T {
		if math.Abs(r.V[i]-tt) > 1e-9 {
			t.Errorf("resample mismatch at %g: %g", tt, r.V[i])
		}
	}
	win := w.Window(2, 7)
	if win.Start() != 2 || win.End() != 7 {
		t.Errorf("Window span [%g,%g]", win.Start(), win.End())
	}
	if math.Abs(win.At(2)-2) > 1e-12 || math.Abs(win.At(7)-7) > 1e-12 {
		t.Error("Window edge values wrong")
	}
}

// Property: At is always within the [min,max] of the neighboring samples
// (linear interpolation cannot overshoot), and shifting the waveform shifts
// every evaluation point identically.
func TestQuickShiftInvariance(t *testing.T) {
	f := func(rawT [8]float64, rawV [8]float64, q float64, dt float64) bool {
		// Build a strictly increasing, finite time base from rawT.
		ts := make([]float64, 0, 8)
		vs := make([]float64, 0, 8)
		cur := 0.0
		for i := 0; i < 8; i++ {
			step := math.Abs(rawT[i])
			if math.IsNaN(step) || math.IsInf(step, 0) || step > 1e6 {
				step = 1
			}
			cur += step + 1e-6
			v := rawV[i]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				v = 0
			}
			ts = append(ts, cur)
			vs = append(vs, v)
		}
		w, err := New(ts, vs)
		if err != nil {
			return false
		}
		if math.IsNaN(q) || math.IsInf(q, 0) || math.Abs(q) > 1e6 {
			q = 0.5
		}
		if math.IsNaN(dt) || math.IsInf(dt, 0) || math.Abs(dt) > 1e6 {
			dt = 1
		}
		tq := ts[0] + math.Mod(math.Abs(q), ts[len(ts)-1]-ts[0]+1)
		a := w.At(tq)
		b := w.Shifted(dt).At(tq + dt)
		return math.Abs(a-b) < 1e-6*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: linear interpolation is bounded by sample extremes.
func TestQuickInterpolationBounds(t *testing.T) {
	f := func(rawV [6]float64, q float64) bool {
		ts := []float64{0, 1, 2, 3, 4, 5}
		vs := make([]float64, 6)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range rawV {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			v = math.Mod(v, 100)
			vs[i] = v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		w := MustNew(ts, vs)
		tq := math.Mod(math.Abs(q), 7) - 1 // may fall outside [0,5] to exercise clamping
		got := w.At(tq)
		return got >= lo-1e-12 && got <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := (Waveform{}).String(); got != "wave{}" {
		t.Errorf("empty String = %q", got)
	}
	w := MustNew([]float64{0, 1}, []float64{0, 2})
	if got := w.String(); got == "" {
		t.Error("String empty")
	}
}
