// Package wave provides piecewise-linear (PWL) voltage waveforms and the
// measurement utilities — level crossings, 50% propagation delay, transition
// (slew) times, and the paper's RMSE metric (Eq. 6) — used throughout the
// mcsm library.
//
// A Waveform is an immutable sampled function of time. Between samples it is
// linearly interpolated; outside the sampled span it is clamped to the first
// or last value (the convention used by SPICE PWL sources).
package wave

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Waveform is a piecewise-linear function of time. T holds strictly
// increasing sample times in seconds and V the corresponding values (volts
// for signal waveforms, amperes when used for currents). The two slices
// always have equal, nonzero length for a valid waveform.
type Waveform struct {
	T []float64
	V []float64
}

// New builds a waveform from parallel time/value slices. It returns an error
// when the slices are empty, of different lengths, contain non-finite
// entries, or when times are not strictly increasing. The slices are used
// directly (not copied).
func New(t, v []float64) (Waveform, error) {
	if len(t) == 0 {
		return Waveform{}, errors.New("wave: empty waveform")
	}
	if len(t) != len(v) {
		return Waveform{}, fmt.Errorf("wave: length mismatch: %d times vs %d values", len(t), len(v))
	}
	for i := range t {
		if math.IsNaN(t[i]) || math.IsInf(t[i], 0) || math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			return Waveform{}, fmt.Errorf("wave: non-finite sample at index %d", i)
		}
		if i > 0 && t[i] <= t[i-1] {
			return Waveform{}, fmt.Errorf("wave: times not strictly increasing at index %d (%g after %g)", i, t[i], t[i-1])
		}
	}
	return Waveform{T: t, V: v}, nil
}

// MustNew is like New but panics on invalid input. It is intended for
// compile-time-constant waveforms in tests and examples.
func MustNew(t, v []float64) Waveform {
	w, err := New(t, v)
	if err != nil {
		panic(err)
	}
	return w
}

// Constant returns a flat waveform at value v spanning [t0, t1].
func Constant(v, t0, t1 float64) Waveform {
	if t1 <= t0 {
		t1 = t0 + 1e-18
	}
	return Waveform{T: []float64{t0, t1}, V: []float64{v, v}}
}

// SaturatedRamp returns the canonical STA stimulus: the value holds at v0
// until start, transitions linearly to v1 over the transition time tt
// (0%-to-100% duration), then holds at v1 until end. The waveform spans
// [spanStart, end]; spanStart is min(start, end) clamped below start so the
// initial value is represented.
func SaturatedRamp(v0, v1, start, tt, end float64) Waveform {
	if tt <= 0 {
		tt = 1e-15
	}
	t0 := start
	tend := start + tt
	ts := []float64{t0 - 1e-15, t0, tend}
	vs := []float64{v0, v0, v1}
	if end > tend {
		ts = append(ts, end)
		vs = append(vs, v1)
	}
	return Waveform{T: ts, V: vs}
}

// Pulse returns a waveform that rests at base, ramps to peak starting at
// start over rise seconds, holds peak for width seconds, and ramps back to
// base over fall seconds, holding until end.
func Pulse(base, peak, start, rise, width, fall, end float64) Waveform {
	if rise <= 0 {
		rise = 1e-15
	}
	if fall <= 0 {
		fall = 1e-15
	}
	if width < 0 {
		width = 0
	}
	ts := []float64{start - 1e-15, start, start + rise}
	vs := []float64{base, base, peak}
	tFallStart := start + rise + width
	if width > 0 {
		ts = append(ts, tFallStart)
		vs = append(vs, peak)
	}
	ts = append(ts, tFallStart+fall)
	vs = append(vs, base)
	if end > tFallStart+fall {
		ts = append(ts, end)
		vs = append(vs, base)
	}
	return Waveform{T: ts, V: vs}
}

// Len reports the number of samples.
func (w Waveform) Len() int { return len(w.T) }

// Empty reports whether the waveform has no samples.
func (w Waveform) Empty() bool { return len(w.T) == 0 }

// Start returns the first sample time. It panics on an empty waveform.
func (w Waveform) Start() float64 { return w.T[0] }

// End returns the last sample time. It panics on an empty waveform.
func (w Waveform) End() float64 { return w.T[len(w.T)-1] }

// First returns the first sample value.
func (w Waveform) First() float64 { return w.V[0] }

// Last returns the last sample value.
func (w Waveform) Last() float64 { return w.V[len(w.V)-1] }

// At evaluates the waveform at time t with linear interpolation, clamping to
// the first/last value outside the sampled span.
func (w Waveform) At(t float64) float64 {
	n := len(w.T)
	if n == 0 {
		return 0
	}
	if t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	// Binary search for the segment containing t.
	i := sort.SearchFloat64s(w.T, t)
	// w.T[i-1] < t <= w.T[i]
	t0, t1 := w.T[i-1], w.T[i]
	v0, v1 := w.V[i-1], w.V[i]
	frac := (t - t0) / (t1 - t0)
	return v0 + frac*(v1-v0)
}

// Clone returns a deep copy of the waveform.
func (w Waveform) Clone() Waveform {
	t := make([]float64, len(w.T))
	v := make([]float64, len(w.V))
	copy(t, w.T)
	copy(v, w.V)
	return Waveform{T: t, V: v}
}

// Shifted returns the waveform translated by dt in time.
func (w Waveform) Shifted(dt float64) Waveform {
	out := w.Clone()
	for i := range out.T {
		out.T[i] += dt
	}
	return out
}

// Scaled returns the waveform with all values multiplied by k.
func (w Waveform) Scaled(k float64) Waveform {
	out := w.Clone()
	for i := range out.V {
		out.V[i] *= k
	}
	return out
}

// Offset returns the waveform with dv added to all values.
func (w Waveform) Offset(dv float64) Waveform {
	out := w.Clone()
	for i := range out.V {
		out.V[i] += dv
	}
	return out
}

// Resampled returns the waveform sampled uniformly every dt over [t0, t1]
// inclusive of both endpoints.
func (w Waveform) Resampled(t0, t1, dt float64) Waveform {
	if dt <= 0 || t1 <= t0 {
		return Constant(w.At(t0), t0, t0+1e-18)
	}
	n := int(math.Ceil((t1-t0)/dt)) + 1
	ts := make([]float64, 0, n)
	vs := make([]float64, 0, n)
	for i := 0; ; i++ {
		t := t0 + float64(i)*dt
		if t > t1+dt*1e-9 {
			break
		}
		if t > t1 {
			t = t1
		}
		ts = append(ts, t)
		vs = append(vs, w.At(t))
		if t == t1 {
			break
		}
	}
	return Waveform{T: ts, V: vs}
}

// Window returns the portion of the waveform within [t0, t1], with exact
// interpolated samples inserted at the window edges.
func (w Waveform) Window(t0, t1 float64) Waveform {
	if w.Empty() || t1 <= t0 {
		return Waveform{}
	}
	ts := []float64{t0}
	vs := []float64{w.At(t0)}
	for i := range w.T {
		if w.T[i] > t0 && w.T[i] < t1 {
			ts = append(ts, w.T[i])
			vs = append(vs, w.V[i])
		}
	}
	ts = append(ts, t1)
	vs = append(vs, w.At(t1))
	return Waveform{T: ts, V: vs}
}

// String renders a short human-readable summary of the waveform.
func (w Waveform) String() string {
	if w.Empty() {
		return "wave{}"
	}
	return fmt.Sprintf("wave{%d pts, t=[%.4g,%.4g], v=[%.4g..%.4g]}",
		w.Len(), w.Start(), w.End(), w.First(), w.Last())
}
