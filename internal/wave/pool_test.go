package wave

import (
	"sync"
	"testing"
)

func TestGetSamplesSizingAndZeroing(t *testing.T) {
	for _, n := range []int{1, 15, 16, 17, 100, 1 << poolMinBits, 1 << 10} {
		s := GetSamples(n)
		if len(s) != n {
			t.Fatalf("GetSamples(%d): len %d", n, len(s))
		}
		if c := cap(s); c&(c-1) != 0 {
			t.Errorf("GetSamples(%d): cap %d not a power of two", n, c)
		}
		for i, v := range s {
			if v != 0 {
				t.Fatalf("GetSamples(%d): s[%d] = %g, want zeroed", n, i, v)
			}
		}
		PutSamples(s)
	}
	// Beyond the largest class: plain allocation, still usable.
	big := GetSamples(1<<poolMaxBits + 1)
	if len(big) != 1<<poolMaxBits+1 {
		t.Fatalf("oversized GetSamples len %d", len(big))
	}
	PutSamples(big) // silently dropped, must not panic
}

func TestPutSamplesRecycles(t *testing.T) {
	s := GetSamples(100)
	s[0] = 42
	PutSamples(s)
	r := GetSamples(100)
	if &r[0] != &s[0] {
		// Another test may have stocked the class; drain until ours shows up
		// or the list is empty.
		found := false
		for i := 0; i < 70; i++ {
			r2 := GetSamples(100)
			if &r2[0] == &s[0] {
				found = true
				r = r2
				break
			}
		}
		if !found {
			t.Fatal("recycled buffer never came back from the pool")
		}
	}
	if r[0] != 0 {
		t.Errorf("recycled buffer not zeroed: %g", r[0])
	}
}

func TestPutSamplesRejectsForeignSlices(t *testing.T) {
	// Non-power-of-two capacity, too small, nil: all dropped silently.
	PutSamples(make([]float64, 10, 10))
	PutSamples(make([]float64, 3))
	PutSamples(nil)
	s := GetSamples(10)
	if cap(s) != 1<<poolMinBits {
		t.Errorf("small class cap %d, want %d", cap(s), 1<<poolMinBits)
	}
	PutSamples(s)
}

// TestReleaseAliasing is the ownership contract of the pool: data copied out
// of a pooled waveform before Release must survive the buffer being recycled
// and scribbled on by the next owner, and the released waveform itself is
// cleared so a stale re-release cannot double-free.
func TestReleaseAliasing(t *testing.T) {
	const n = 64
	w := Waveform{T: GetSamples(n), V: GetSamples(n)}
	for i := 0; i < n; i++ {
		w.T[i] = float64(i) * 1e-12
		w.V[i] = float64(i) * 0.01
	}
	keep := w.Clone()

	Release(&w)
	if w.T != nil || w.V != nil {
		t.Fatal("Release left slices attached")
	}
	Release(&w) // second release is a no-op, not a double-free

	// The next owner gets the recycled buffers and overwrites them.
	a := GetSamples(n)
	b := GetSamples(n)
	for i := range a {
		a[i] = -999
		b[i] = -999
	}
	for i := 0; i < n; i++ {
		if keep.T[i] != float64(i)*1e-12 || keep.V[i] != float64(i)*0.01 {
			t.Fatalf("live clone corrupted at %d: (%g, %g)", i, keep.T[i], keep.V[i])
		}
	}
	PutSamples(a)
	PutSamples(b)
}

// TestPoolConcurrent hammers get/put from many goroutines so the race
// detector can see the lock discipline.
func TestPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 16 + (g*37+i)%500
				s := GetSamples(n)
				for j := range s {
					s[j] = float64(g)
				}
				PutSamples(s)
			}
		}(g)
	}
	wg.Wait()
}
