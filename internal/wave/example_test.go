package wave_test

import (
	"fmt"

	"mcsm/internal/wave"
)

// ExampleSaturatedRamp builds the canonical STA stimulus and measures it.
func ExampleSaturatedRamp() {
	vdd := 1.2
	w := wave.SaturatedRamp(0, vdd, 1e-9, 100e-12, 4e-9)
	t50, _ := w.CrossTime(vdd/2, true, 0)
	slew, _ := wave.TransitionTime(w, vdd, true, 0.1, 0.9, 0)
	fmt.Printf("50%% crossing at %.2f ns\n", t50*1e9)
	fmt.Printf("10-90%% slew %.0f ps\n", slew*1e12)
	// Output:
	// 50% crossing at 1.05 ns
	// 10-90% slew 80 ps
}

// ExampleRMSE computes the paper's Eq. 6 waveform-similarity metric.
func ExampleRMSE() {
	a := wave.SaturatedRamp(0, 1.2, 1e-9, 100e-12, 4e-9)
	b := a.Shifted(10e-12) // the "model" arrives 10 ps late
	rmse := wave.RMSE(a, b, 0, 4e-9, 2000) / 1.2
	fmt.Printf("RMSE is %.1f%% of Vdd\n", 100*rmse)
	// Output:
	// RMSE is 1.6% of Vdd
}
