package wave

import "math"

// Simplified returns a piecewise-linear approximation of the waveform with
// the fewest samples such that the reconstruction never deviates from the
// original by more than tol (volts), using the Douglas–Peucker algorithm.
// Dense simulator outputs compress by 1–2 orders of magnitude at sub-mV
// tolerances, which matters when waveforms are stored per net across a
// large design.
func (w Waveform) Simplified(tol float64) Waveform {
	n := w.Len()
	if n <= 2 || tol <= 0 {
		return w.Clone()
	}
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true

	// Iterative Douglas–Peucker (explicit stack avoids recursion depth
	// concerns on 10⁵-sample transients).
	type span struct{ lo, hi int }
	stack := []span{{0, n - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		// Find the sample farthest (vertically) from the chord.
		t0, v0 := w.T[s.lo], w.V[s.lo]
		t1, v1 := w.T[s.hi], w.V[s.hi]
		slope := (v1 - v0) / (t1 - t0)
		worst, at := 0.0, -1
		for k := s.lo + 1; k < s.hi; k++ {
			d := math.Abs(w.V[k] - (v0 + slope*(w.T[k]-t0)))
			if d > worst {
				worst, at = d, k
			}
		}
		if worst > tol {
			keep[at] = true
			stack = append(stack, span{s.lo, at}, span{at, s.hi})
		}
	}

	ts := make([]float64, 0, 16)
	vs := make([]float64, 0, 16)
	for k := 0; k < n; k++ {
		if keep[k] {
			ts = append(ts, w.T[k])
			vs = append(vs, w.V[k])
		}
	}
	return Waveform{T: ts, V: vs}
}
