package wave

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDerivativeOfRamp(t *testing.T) {
	// Linear ramp 0→1 over 1s sampled at 11 points: derivative 1 everywhere.
	ts := make([]float64, 11)
	vs := make([]float64, 11)
	for i := range ts {
		ts[i] = float64(i) / 10
		vs[i] = ts[i]
	}
	d := MustNew(ts, vs).Derivative()
	if d.Len() != 9 {
		t.Fatalf("derivative samples = %d", d.Len())
	}
	for i := range d.V {
		if math.Abs(d.V[i]-1) > 1e-12 {
			t.Errorf("d[%d] = %g, want 1", i, d.V[i])
		}
	}
	// Degenerate inputs.
	if got := MustNew([]float64{0, 1}, []float64{0, 1}).Derivative(); !got.Empty() {
		t.Error("2-sample derivative should be empty")
	}
}

func TestIntegralOfConstant(t *testing.T) {
	w := Constant(2, 0, 3)
	in := w.Integral()
	if got := in.Last(); math.Abs(got-6) > 1e-12 {
		t.Errorf("∫2 dt over 3s = %g, want 6", got)
	}
	if got := in.First(); got != 0 {
		t.Errorf("integral must start at 0, got %g", got)
	}
	if got := (Waveform{}).Integral(); !got.Empty() {
		t.Error("integral of empty not empty")
	}
}

func TestEnergy(t *testing.T) {
	// v = 1 over 2s → energy 2.
	if got := Constant(1, 0, 2).Energy(); math.Abs(got-2) > 1e-12 {
		t.Errorf("energy = %g, want 2", got)
	}
}

// Property: the derivative of the integral reproduces the original values
// (interior samples, smooth inputs).
func TestQuickDerivativeIntegralRoundtrip(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.5
			}
			return math.Mod(x, 3)
		}
		a, b, c = clamp(a), clamp(b), clamp(c)
		n := 101
		ts := make([]float64, n)
		vs := make([]float64, n)
		for i := range ts {
			x := float64(i) / float64(n-1)
			ts[i] = x
			vs[i] = a + b*x + c*x*x
		}
		w := MustNew(ts, vs)
		back := w.Integral().Derivative()
		for i := range back.T {
			want := w.At(back.T[i])
			// Trapezoid + central difference is 2nd order: tolerance scales
			// with the quadratic coefficient and h².
			if math.Abs(back.V[i]-want) > 1e-3*(1+math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDerivativeSkipsDegenerateSpacing: central differences over a raw
// sample triple with coincident outer times (unreachable through New,
// which enforces strictly increasing times, but constructible by direct
// struct use) must skip the degenerate point instead of dividing by zero.
func TestDerivativeSkipsDegenerateSpacing(t *testing.T) {
	w := Waveform{T: []float64{0, 0, 0, 1, 2}, V: []float64{0, 1, 2, 3, 4}}
	d := w.Derivative()
	for i, v := range d.V {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("sample %d: non-finite derivative %g", i, v)
		}
	}
	if d.Len() != 2 { // interior points k=2 (dt=1) and k=3 (dt=2) survive
		t.Errorf("len = %d, want 2", d.Len())
	}
}

// TestIntegralNonUniformGrid pins the trapezoid rule on an uneven grid:
// ∫ of v(t)=t over [0,3] sampled at {0,1,3} is exactly 4.5.
func TestIntegralNonUniformGrid(t *testing.T) {
	w := MustNew([]float64{0, 1, 3}, []float64{0, 1, 3})
	in := w.Integral()
	if got := in.V[in.Len()-1]; math.Abs(got-4.5) > 1e-12 {
		t.Errorf("integral end = %g, want 4.5", got)
	}
	if in.V[0] != 0 {
		t.Errorf("integral must start at zero, got %g", in.V[0])
	}
}

// TestEnergyEdgeCases: empty and single-sample waveforms carry no energy.
func TestEnergyEdgeCases(t *testing.T) {
	if got := (Waveform{}).Energy(); got != 0 {
		t.Errorf("empty energy = %g", got)
	}
	if got := (Waveform{T: []float64{1}, V: []float64{5}}).Energy(); got != 0 {
		t.Errorf("single-sample energy = %g", got)
	}
}
