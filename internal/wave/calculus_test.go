package wave

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDerivativeOfRamp(t *testing.T) {
	// Linear ramp 0→1 over 1s sampled at 11 points: derivative 1 everywhere.
	ts := make([]float64, 11)
	vs := make([]float64, 11)
	for i := range ts {
		ts[i] = float64(i) / 10
		vs[i] = ts[i]
	}
	d := MustNew(ts, vs).Derivative()
	if d.Len() != 9 {
		t.Fatalf("derivative samples = %d", d.Len())
	}
	for i := range d.V {
		if math.Abs(d.V[i]-1) > 1e-12 {
			t.Errorf("d[%d] = %g, want 1", i, d.V[i])
		}
	}
	// Degenerate inputs.
	if got := MustNew([]float64{0, 1}, []float64{0, 1}).Derivative(); !got.Empty() {
		t.Error("2-sample derivative should be empty")
	}
}

func TestIntegralOfConstant(t *testing.T) {
	w := Constant(2, 0, 3)
	in := w.Integral()
	if got := in.Last(); math.Abs(got-6) > 1e-12 {
		t.Errorf("∫2 dt over 3s = %g, want 6", got)
	}
	if got := in.First(); got != 0 {
		t.Errorf("integral must start at 0, got %g", got)
	}
	if got := (Waveform{}).Integral(); !got.Empty() {
		t.Error("integral of empty not empty")
	}
}

func TestEnergy(t *testing.T) {
	// v = 1 over 2s → energy 2.
	if got := Constant(1, 0, 2).Energy(); math.Abs(got-2) > 1e-12 {
		t.Errorf("energy = %g, want 2", got)
	}
}

// Property: the derivative of the integral reproduces the original values
// (interior samples, smooth inputs).
func TestQuickDerivativeIntegralRoundtrip(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.5
			}
			return math.Mod(x, 3)
		}
		a, b, c = clamp(a), clamp(b), clamp(c)
		n := 101
		ts := make([]float64, n)
		vs := make([]float64, n)
		for i := range ts {
			x := float64(i) / float64(n-1)
			ts[i] = x
			vs[i] = a + b*x + c*x*x
		}
		w := MustNew(ts, vs)
		back := w.Integral().Derivative()
		for i := range back.T {
			want := w.At(back.T[i])
			// Trapezoid + central difference is 2nd order: tolerance scales
			// with the quadratic coefficient and h².
			if math.Abs(back.V[i]-want) > 1e-3*(1+math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
