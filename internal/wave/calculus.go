package wave

// Derivative returns the time derivative of the waveform, computed with
// central differences on the interior samples (one-sided at the ends when
// fewer than three samples exist). The result is sampled on the original
// grid minus the two end points.
func (w Waveform) Derivative() Waveform {
	n := w.Len()
	if n < 3 {
		return Waveform{}
	}
	ts := make([]float64, 0, n-2)
	vs := make([]float64, 0, n-2)
	for k := 1; k < n-1; k++ {
		dt := w.T[k+1] - w.T[k-1]
		if dt <= 0 {
			continue
		}
		ts = append(ts, w.T[k])
		vs = append(vs, (w.V[k+1]-w.V[k-1])/dt)
	}
	return Waveform{T: ts, V: vs}
}

// Integral returns the running trapezoidal integral ∫v dt of the waveform,
// sampled on the original grid (starting at zero).
func (w Waveform) Integral() Waveform {
	n := w.Len()
	if n == 0 {
		return Waveform{}
	}
	ts := make([]float64, n)
	vs := make([]float64, n)
	copy(ts, w.T)
	var acc float64
	for k := 1; k < n; k++ {
		acc += 0.5 * (w.V[k] + w.V[k-1]) * (w.T[k] - w.T[k-1])
		vs[k] = acc
	}
	return Waveform{T: ts, V: vs}
}

// Energy returns ∫v² dt over the waveform's span — useful as a crude
// signal-activity metric.
func (w Waveform) Energy() float64 {
	var acc float64
	for k := 1; k < w.Len(); k++ {
		v2 := 0.5 * (w.V[k]*w.V[k] + w.V[k-1]*w.V[k-1])
		acc += v2 * (w.T[k] - w.T[k-1])
	}
	return acc
}
