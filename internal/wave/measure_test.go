package wave

import (
	"math"
	"testing"
)

func TestCrossings(t *testing.T) {
	// Triangle: 0 -> 2 -> 0.
	w := MustNew([]float64{0, 1, 2}, []float64{0, 2, 0})
	cs := w.Crossings(1)
	if len(cs) != 2 {
		t.Fatalf("crossings = %d, want 2", len(cs))
	}
	if !cs[0].Rising || math.Abs(cs[0].Time-0.5) > 1e-12 {
		t.Errorf("first crossing %+v", cs[0])
	}
	if cs[1].Rising || math.Abs(cs[1].Time-1.5) > 1e-12 {
		t.Errorf("second crossing %+v", cs[1])
	}
	// Level above waveform: no crossings.
	if got := w.Crossings(3); len(got) != 0 {
		t.Errorf("crossings above peak: %d", len(got))
	}
	// Flat waveform on the level: no crossings.
	flat := MustNew([]float64{0, 1}, []float64{1, 1})
	if got := flat.Crossings(1); len(got) != 0 {
		t.Errorf("flat-on-level crossings: %d", len(got))
	}
}

func TestCrossingExactEndpoint(t *testing.T) {
	// Departs exactly from the level.
	w := MustNew([]float64{0, 1}, []float64{1, 2})
	cs := w.Crossings(1)
	if len(cs) != 1 || !cs[0].Rising || cs[0].Time != 0 {
		t.Errorf("exact endpoint crossing: %+v", cs)
	}
}

func TestCrossTimeDirections(t *testing.T) {
	w := MustNew([]float64{0, 1, 2, 3, 4}, []float64{0, 2, 0, 2, 0})
	tr, ok := w.CrossTime(1, true, 0)
	if !ok || math.Abs(tr-0.5) > 1e-12 {
		t.Errorf("first rising = %g ok=%v", tr, ok)
	}
	tr2, ok := w.CrossTime(1, true, 1.0)
	if !ok || math.Abs(tr2-2.5) > 1e-12 {
		t.Errorf("second rising = %g ok=%v", tr2, ok)
	}
	tf, ok := w.CrossTime(1, false, 0)
	if !ok || math.Abs(tf-1.5) > 1e-12 {
		t.Errorf("first falling = %g ok=%v", tf, ok)
	}
	if _, ok := w.CrossTime(1, true, 10); ok {
		t.Error("found crossing after end")
	}
	tl, ok := w.LastCrossTime(1, false)
	if !ok || math.Abs(tl-3.5) > 1e-12 {
		t.Errorf("last falling = %g ok=%v", tl, ok)
	}
	if _, ok := w.LastCrossTime(5, false); ok {
		t.Error("LastCrossTime found nonexistent crossing")
	}
}

func TestDelay50(t *testing.T) {
	vdd := 1.2
	in := SaturatedRamp(0, vdd, 1e-9, 100e-12, 5e-9)
	out := SaturatedRamp(vdd, 0, 1.2e-9, 200e-12, 5e-9)
	d, err := Delay50(in, out, vdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Input crosses 0.6 at 1.05ns; output at 1.3ns -> 250ps.
	if math.Abs(d-250e-12) > 1e-15 {
		t.Errorf("Delay50 = %g, want 250ps", d)
	}
	// Missing crossings produce errors.
	flat := Constant(0, 0, 5e-9)
	if _, err := Delay50(flat, out, vdd, 0); err == nil {
		t.Error("flat input accepted")
	}
	if _, err := Delay50(in, flat, vdd, 0); err == nil {
		t.Error("flat output accepted")
	}
}

func TestOutputCross50(t *testing.T) {
	vdd := 1.2
	out := SaturatedRamp(0, vdd, 2e-9, 100e-12, 5e-9)
	tc, err := OutputCross50(out, vdd, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tc-2.05e-9) > 1e-15 {
		t.Errorf("cross = %g", tc)
	}
	if _, err := OutputCross50(out, vdd, false, 0); err == nil {
		t.Error("falling crossing should not exist")
	}
}

func TestTransitionTime(t *testing.T) {
	vdd := 1.0
	// Perfect ramp 0->1 over 100ps: 10-90 slew is 80ps.
	w := SaturatedRamp(0, vdd, 0, 100e-12, 1e-9)
	s, err := TransitionTime(w, vdd, true, 0.1, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-80e-12) > 1e-15 {
		t.Errorf("rising slew = %g, want 80ps", s)
	}
	f := SaturatedRamp(vdd, 0, 0, 100e-12, 1e-9)
	s2, err := TransitionTime(f, vdd, false, 0.1, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2-80e-12) > 1e-15 {
		t.Errorf("falling slew = %g, want 80ps", s2)
	}
	if _, err := TransitionTime(w, vdd, true, 0.9, 0.1, 0); err == nil {
		t.Error("inverted fractions accepted")
	}
	if _, err := TransitionTime(w, vdd, false, 0.1, 0.9, 0); err == nil {
		t.Error("absent falling transition accepted")
	}
}

func TestRMSE(t *testing.T) {
	a := Constant(1, 0, 1)
	b := Constant(0, 0, 1)
	if got := RMSE(a, b, 0, 1, 101); math.Abs(got-1) > 1e-12 {
		t.Errorf("RMSE of unit offset = %g", got)
	}
	if got := RMSE(a, a, 0, 1, 101); got != 0 {
		t.Errorf("RMSE of identical = %g", got)
	}
	// Degenerate windows return 0.
	if got := RMSE(a, b, 1, 0, 101); got != 0 {
		t.Errorf("RMSE inverted window = %g", got)
	}
	if got := RMSE(a, b, 0, 1, 1); got != 0 {
		t.Errorf("RMSE n=1 = %g", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := MustNew([]float64{0, 1, 2}, []float64{0, 1, 0})
	b := Constant(0, 0, 2)
	d, at := MaxAbsDiff(a, b, 0, 2, 201)
	if math.Abs(d-1) > 1e-9 || math.Abs(at-1) > 0.02 {
		t.Errorf("MaxAbsDiff = %g at %g", d, at)
	}
}

func TestExtremumAndPeak(t *testing.T) {
	w := MustNew([]float64{0, 1, 2, 3}, []float64{0, 3, -1, 0})
	min, max := w.Extremum(0, 3)
	if min != -1 || max != 3 {
		t.Errorf("Extremum = (%g,%g)", min, max)
	}
	// Window excluding the peak.
	_, max2 := w.Extremum(1.5, 3)
	if max2 >= 3 {
		t.Errorf("windowed max = %g should exclude peak", max2)
	}
	p, at := w.PeakValue(0, 3)
	if p != 3 || at != 1 {
		t.Errorf("PeakValue = %g at %g", p, at)
	}
}
