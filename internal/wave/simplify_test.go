package wave

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimplifiedRamp(t *testing.T) {
	// A densely sampled perfect ramp collapses to its corner points.
	w := SaturatedRamp(0, 1.2, 1e-9, 100e-12, 4e-9).Resampled(0, 4e-9, 1e-12)
	s := w.Simplified(1e-6)
	if s.Len() > 8 {
		t.Errorf("ramp simplified to %d points, want ≤ 8", s.Len())
	}
	// Reconstruction stays within tolerance.
	d, _ := MaxAbsDiff(w, s, 0, 4e-9, 4001)
	if d > 1e-5 {
		t.Errorf("simplified ramp deviates by %g", d)
	}
}

func TestSimplifiedSine(t *testing.T) {
	n := 2001
	ts := make([]float64, n)
	vs := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i) * 1e-12
		vs[i] = 0.6 + 0.6*math.Sin(2*math.Pi*float64(i)/500)
	}
	w := MustNew(ts, vs)
	s := w.Simplified(5e-3)
	if s.Len() >= n/10 {
		t.Errorf("sine simplified to %d of %d points — insufficient compression", s.Len(), n)
	}
	d, _ := MaxAbsDiff(w, s, ts[0], ts[n-1], 5000)
	if d > 5.5e-3 {
		t.Errorf("simplified sine deviates by %g > tol", d)
	}
	t.Logf("sine: %d → %d points at 5mV tolerance", n, s.Len())
}

func TestSimplifiedDegenerate(t *testing.T) {
	w := MustNew([]float64{0, 1}, []float64{0, 1})
	if got := w.Simplified(0.1); got.Len() != 2 {
		t.Errorf("2-point waveform changed: %d", got.Len())
	}
	if got := w.Simplified(0); got.Len() != 2 {
		t.Errorf("zero tolerance changed: %d", got.Len())
	}
}

// Property: the simplified waveform always honors the tolerance and always
// keeps the endpoints.
func TestQuickSimplifyTolerance(t *testing.T) {
	f := func(raw [24]float64, tolRaw float64) bool {
		n := len(raw)
		ts := make([]float64, n)
		vs := make([]float64, n)
		for i := range raw {
			ts[i] = float64(i)
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vs[i] = math.Mod(v, 10)
		}
		w := MustNew(ts, vs)
		tol := 0.01 + math.Abs(math.Mod(tolRaw, 2))
		s := w.Simplified(tol)
		if s.First() != w.First() || s.Last() != w.Last() ||
			s.Start() != w.Start() || s.End() != w.End() {
			return false
		}
		d, _ := MaxAbsDiff(w, s, w.Start(), w.End(), 500)
		return d <= tol*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
