package mcsm

// Golden regression fixtures: canonical STA reports for the c17 benchmark
// and the c432-class corpus circuit, plus one canonical sweep surface,
// committed under testdata/golden/. The tests fail on any bit-level drift
// of arrivals, slews, directions, waveform samples (via FNV fingerprints),
// MIS lists, or sweep measurements — the cross-PR complement of the
// in-process serial-vs-parallel equivalence tests: they catch uninten-
// tional numeric changes introduced by *code* changes, not just by
// scheduling. Regenerate intentionally with:
//
//	go test . -run Golden -update

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"mcsm/internal/engine"
	"mcsm/internal/graph"
	"mcsm/internal/mc"
	"mcsm/internal/netlist"
	"mcsm/internal/service"
	"mcsm/internal/sta"
	"mcsm/internal/sweep"
	"mcsm/internal/testutil"
)

const goldenDir = "testdata/golden"

// goldenEngine is shared by all golden tests so each coarse model (INV,
// NAND2, NOR2) characterizes exactly once per test binary.
var (
	goldenEngOnce sync.Once
	goldenEng     *engine.Engine
)

func goldenEngine() *engine.Engine {
	goldenEngOnce.Do(func() { goldenEng = engine.New(0, nil) })
	return goldenEng
}

// TestGoldenC17Report pins the canonical c17 analysis (coarse NAND2 MCSM,
// canonical stimulus, 2 ps step, MIS mode) bit-for-bit.
func TestGoldenC17Report(t *testing.T) {
	eng := goldenEngine()
	nl, primary, opt := testutil.C17Fixture(t)
	models, err := eng.ModelsFor(testutil.Tech(), nl, testutil.CoarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Analyze(nl, models, primary, opt)
	if err != nil {
		t.Fatal(err)
	}
	testutil.Golden(t, filepath.Join(goldenDir, "c17_sta.json"),
		testutil.MarshalReport(t, "c17", rep))
}

// TestGoldenC432Report pins the mid-size corpus analysis: the technology-
// mapped c432-class circuit (552 cells) under the staggered corpus
// stimulus, over the same window/step as the engine's mid-size
// equivalence test.
func TestGoldenC432Report(t *testing.T) {
	f, err := os.Open("internal/netlist/testdata/c432.bench")
	if err != nil {
		t.Fatal(err)
	}
	circ, err := netlist.ParseBench(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	nl, err := netlist.Map(circ)
	if err != nil {
		t.Fatal(err)
	}
	eng := goldenEngine()
	models, err := eng.ModelsFor(testutil.Tech(), nl, testutil.CoarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2.6e-9
	primary := netlist.Stimulus(nl.PrimaryIn, testutil.Tech().Vdd, 80e-12, horizon)
	rep, err := eng.Analyze(nl, models, primary, sta.Options{Horizon: horizon, Dt: 4e-12})
	if err != nil {
		t.Fatal(err)
	}
	testutil.Golden(t, filepath.Join(goldenDir, "c432_sta.json"),
		testutil.MarshalReport(t, "c432", rep))
}

// loadC432 parses and technology-maps the c432-class corpus circuit.
func loadC432(t *testing.T) *sta.Netlist {
	t.Helper()
	f, err := os.Open("internal/netlist/testdata/c432.bench")
	if err != nil {
		t.Fatal(err)
	}
	circ, err := netlist.ParseBench(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	nl, err := netlist.Map(circ)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// goldenWorstArrival decodes a committed golden report and returns its
// worst primary-output arrival — the full-CSM truth the hybrid fixtures
// are judged against, without re-running the full analysis.
func goldenWorstArrival(t *testing.T, path string, outputs []string) float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var g sta.GoldenReport
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	worst := math.Inf(-1)
	for _, po := range outputs {
		nr, ok := g.Nets[po]
		if !ok || nr.Arrival == "NaN" {
			continue
		}
		arr, err := strconv.ParseFloat(nr.Arrival, 64)
		if err != nil {
			t.Fatalf("%s: net %s arrival %q: %v", path, po, nr.Arrival, err)
		}
		if arr > worst {
			worst = arr
		}
	}
	if math.IsInf(worst, -1) {
		t.Fatalf("%s: no finite primary-output arrival", path)
	}
	return worst
}

// c432HybridMargin is the pinned criticality margin of the hybrid golden
// fixtures: explicit rather than the 10%-of-worst default, so the fixture
// does not move when the NLDM pass drifts.
const c432HybridMargin = 150e-12

// TestGoldenC432Hybrid pins the hybrid backend on the mid-size corpus
// circuit: the NLDM pre-pass classifies stages at a fixed 150 ps margin,
// near-critical stages re-evaluate through CSM, and the attributed report
// (c432_hybrid_sta.json) is committed bit-for-bit. Two acceptance
// properties ride along: the CSM re-evaluation set stays small (≤ 40% of
// stages), and the worst primary-output arrival lands within the margin
// of the committed full-CSM report.
func TestGoldenC432Hybrid(t *testing.T) {
	nl := loadC432(t)
	const horizon = 2.6e-9
	primary := netlist.Stimulus(nl.PrimaryIn, testutil.Tech().Vdd, 80e-12, horizon)
	res, err := goldenEngine().AnalyzeBackend(context.Background(), engine.BackendSpec{
		Kind:   engine.BackendHybrid,
		Tech:   testutil.Tech(),
		CSM:    testutil.CoarseConfig(),
		Margin: c432HybridMargin,
	}, nl, primary, sta.Options{Horizon: horizon, Dt: 4e-12})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(res.Plan.CSMStages) / float64(len(nl.Instances)); frac > 0.40 {
		t.Errorf("hybrid re-evaluated %d/%d stages (%.1f%%) through CSM, want ≤ 40%%",
			res.Plan.CSMStages, len(nl.Instances), 100*frac)
	}
	csmWorst := goldenWorstArrival(t, filepath.Join(goldenDir, "c432_sta.json"), nl.PrimaryOut)
	_, hybWorst, ok := res.Report.WorstOutput(nl)
	if !ok {
		t.Fatal("hybrid report has no worst output")
	}
	if d := math.Abs(hybWorst - csmWorst); d > c432HybridMargin {
		t.Errorf("hybrid worst arrival off the full-CSM fixture by %.1f ps (margin %.1f ps)",
			d*1e12, c432HybridMargin*1e12)
	}
	body, err := engine.MarshalBackendReport("c432", nl, res)
	if err != nil {
		t.Fatal(err)
	}
	testutil.Golden(t, filepath.Join(goldenDir, "c432_hybrid_sta.json"), body)
}

// goldenPost fires one POST at an in-process service and returns status
// and body.
func goldenPost(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// marshalRequest renders a service request in the fixture encoding.
func marshalRequest(t *testing.T, req any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestGoldenServeC17 is the service determinism contract on the c17
// fixture: the /v1/sta response for the canonical request must be
// byte-identical to the committed golden report, at any worker-pool
// width. The request itself is also pinned as a fixture
// (c17_sta_request.json) — CI's smoke job POSTs that exact file at a
// real mcsm-serve process and diffs against the same report.
func TestGoldenServeC17(t *testing.T) {
	req := service.STARequest{
		Name:     "c17",
		Netlist:  sta.C17Netlist,
		Format:   "net",
		Config:   "coarse",
		Stimulus: "c17",
		Dt:       "2p",
		Horizon:  "4n",
	}
	reqBody := marshalRequest(t, req)
	testutil.Golden(t, filepath.Join(goldenDir, "c17_sta_request.json"), reqBody)

	for _, workers := range []int{1, 4} {
		srv := service.NewWithEngine(service.Config{}, engine.New(workers, goldenEngine().Cache()))
		ts := httptest.NewServer(srv.Handler())
		status, body := goldenPost(t, ts.URL+"/v1/sta", reqBody)
		ts.Close()
		srv.Close()
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, body)
		}
		if workers == 1 {
			// One comparison against the committed fixture (with -update
			// support)...
			testutil.Golden(t, filepath.Join(goldenDir, "c17_sta.json"), body)
			continue
		}
		// ...and every other width must agree with the fixture exactly.
		want, err := os.ReadFile(filepath.Join(goldenDir, "c17_sta.json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("workers=%d: served report drifted from the fixture", workers)
		}
	}
}

// TestGoldenServeC432 extends the service contract to the mid-size
// corpus circuit: a bench-format request through parsing, technology
// mapping, and the level-parallel engine reproduces the committed c432
// report byte-for-byte.
func TestGoldenServeC432(t *testing.T) {
	bench, err := os.ReadFile("internal/netlist/testdata/c432.bench")
	if err != nil {
		t.Fatal(err)
	}
	req := service.STARequest{
		Name:    "c432",
		Netlist: string(bench),
		Format:  "bench",
		Config:  "coarse",
		Dt:      "4p",
		Horizon: "2.6n",
		// Stimulus defaults to "staggered" for bench workloads — the
		// corpus drive the fixture was generated under.
	}
	srv := service.NewWithEngine(service.Config{}, goldenEngine())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	status, body := goldenPost(t, ts.URL+"/v1/sta", marshalRequest(t, req))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	testutil.Golden(t, filepath.Join(goldenDir, "c432_sta.json"), body)
}

// TestGoldenServeHybrid extends the service determinism contract to the
// hybrid backend: the pinned request (c432_hybrid_request.json) must
// reproduce the committed attributed report byte-for-byte at every
// worker-pool width — the same fixture the engine-level test pins, so
// "the service answers exactly what the engine computes" stays a
// byte-level statement for the new backend too.
func TestGoldenServeHybrid(t *testing.T) {
	bench, err := os.ReadFile("internal/netlist/testdata/c432.bench")
	if err != nil {
		t.Fatal(err)
	}
	req := service.STARequest{
		Name:    "c432",
		Netlist: string(bench),
		Format:  "bench",
		Config:  "coarse",
		Dt:      "4p",
		Horizon: "2.6n",
		Backend: "hybrid",
		Margin:  "150p",
	}
	reqBody := marshalRequest(t, req)
	testutil.Golden(t, filepath.Join(goldenDir, "c432_hybrid_request.json"), reqBody)

	for _, workers := range []int{1, 4} {
		srv := service.NewWithEngine(service.Config{}, engine.New(workers, goldenEngine().Cache()))
		ts := httptest.NewServer(srv.Handler())
		status, body := goldenPost(t, ts.URL+"/v1/sta", reqBody)
		ts.Close()
		srv.Close()
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, body)
		}
		if workers == 1 {
			testutil.Golden(t, filepath.Join(goldenDir, "c432_hybrid_sta.json"), body)
			continue
		}
		want, err := os.ReadFile(filepath.Join(goldenDir, "c432_hybrid_sta.json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("workers=%d: served hybrid report drifted from the fixture", workers)
		}
	}
}

// TestGoldenBackendCSMBitIdentity is the no-regression guarantee of the
// backend layer: a request that *explicitly* selects the csm backend must
// produce today's committed reports byte-for-byte — the backend plumbing
// may not perturb the historical path by even one bit, at any worker
// count.
func TestGoldenBackendCSMBitIdentity(t *testing.T) {
	bench, err := os.ReadFile("internal/netlist/testdata/c432.bench")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		fixture string
		req     service.STARequest
	}{
		{"c17_sta.json", service.STARequest{
			Name: "c17", Netlist: sta.C17Netlist, Format: "net",
			Config: "coarse", Stimulus: "c17", Dt: "2p", Horizon: "4n",
			Backend: "csm",
		}},
		{"c432_sta.json", service.STARequest{
			Name: "c432", Netlist: string(bench), Format: "bench",
			Config: "coarse", Dt: "4p", Horizon: "2.6n",
			Backend: "csm",
		}},
	}
	for _, tc := range cases {
		want, err := os.ReadFile(filepath.Join(goldenDir, tc.fixture))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			srv := service.NewWithEngine(service.Config{}, engine.New(workers, goldenEngine().Cache()))
			ts := httptest.NewServer(srv.Handler())
			status, body := goldenPost(t, ts.URL+"/v1/sta", marshalRequest(t, tc.req))
			ts.Close()
			srv.Close()
			if status != http.StatusOK {
				t.Fatalf("%s workers=%d: status %d: %s", tc.fixture, workers, status, body)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("%s workers=%d: explicit -backend csm drifted from the committed fixture",
					tc.fixture, workers)
			}
		}
	}
}

// TestGoldenServeBatch pins the batch endpoint's framing and its central
// contract in one fixture pair: the committed /v1/sta:batch request
// (c17_batch_request.json — the canonical c17 item twice, so the reply
// also witnesses in-batch dedup) must reproduce the committed reply
// byte-for-byte at every worker-pool width, and every embedded report,
// extracted back out of the reply, must equal the single-request golden
// (c17_sta.json) exactly. CI's smoke job POSTs the same request file at
// a real mcsm-serve process and cmps the same reply.
func TestGoldenServeBatch(t *testing.T) {
	item := service.STARequest{
		Name:     "c17",
		Netlist:  sta.C17Netlist,
		Format:   "net",
		Config:   "coarse",
		Stimulus: "c17",
		Dt:       "2p",
		Horizon:  "4n",
	}
	reqBody := marshalRequest(t, service.BatchSTARequest{
		Items: []service.STARequest{item, item},
	})
	testutil.Golden(t, filepath.Join(goldenDir, "c17_batch_request.json"), reqBody)

	single, err := os.ReadFile(filepath.Join(goldenDir, "c17_sta.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		srv := service.NewWithEngine(service.Config{}, engine.New(workers, goldenEngine().Cache()))
		ts := httptest.NewServer(srv.Handler())
		status, body := goldenPost(t, ts.URL+"/v1/sta:batch", reqBody)
		ts.Close()
		srv.Close()
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, body)
		}
		if workers == 1 {
			testutil.Golden(t, filepath.Join(goldenDir, "c17_batch_reply.json"), body)
		} else {
			want, err := os.ReadFile(filepath.Join(goldenDir, "c17_batch_reply.json"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("workers=%d: batch reply drifted from the fixture", workers)
			}
		}
		var reply service.BatchSTAReply
		if err := json.Unmarshal(body, &reply); err != nil {
			t.Fatalf("workers=%d: batch reply: %v", workers, err)
		}
		if len(reply.Items) != 2 {
			t.Fatalf("workers=%d: %d items", workers, len(reply.Items))
		}
		for i, it := range reply.Items {
			if it.Status != http.StatusOK {
				t.Fatalf("workers=%d item %d: status %d: %s", workers, i, it.Status, it.Error)
			}
			got := append(append([]byte(nil), it.Report...), '\n')
			if !bytes.Equal(got, single) {
				t.Errorf("workers=%d item %d: embedded report differs from the single-request golden", workers, i)
			}
		}
	}
}

// TestGoldenServeEco pins the stateful ECO flow end to end: the committed
// session request builds a retained c17 timing graph server-side, the
// committed eco request applies a three-op edit batch, and the delta
// reply must match testdata/golden/c17_eco_reply.json byte-for-byte — at
// every worker-pool width. CI's smoke job replays the same two fixtures
// against a real mcsm-serve process and cmps the same reply.
func TestGoldenServeEco(t *testing.T) {
	sessReq := service.SessionRequest{
		Session: "golden-c17",
		STARequest: service.STARequest{
			Name:     "c17",
			Netlist:  sta.C17Netlist,
			Format:   "net",
			Config:   "coarse",
			Stimulus: "c17",
			Dt:       "2p",
			Horizon:  "4n",
		},
	}
	sessBody := marshalRequest(t, sessReq)
	testutil.Golden(t, filepath.Join(goldenDir, "c17_eco_session.json"), sessBody)

	ecoReq := service.EcoRequest{
		Session: "golden-c17",
		Edits: []graph.Edit{
			{Op: "swap_cell", Inst: "G22", Type: "NOR2"},
			{Op: "set_arrival", Net: "n1", Wave: "rise@1.1n"},
			{Op: "set_load", Net: "n23", Cap: "4f"},
		},
	}
	ecoBody := marshalRequest(t, ecoReq)
	testutil.Golden(t, filepath.Join(goldenDir, "c17_eco_request.json"), ecoBody)

	for _, workers := range []int{1, 4} {
		srv := service.NewWithEngine(service.Config{}, engine.New(workers, goldenEngine().Cache()))
		ts := httptest.NewServer(srv.Handler())
		status, body := goldenPost(t, ts.URL+"/v1/session", sessBody)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: session status %d: %s", workers, status, body)
		}
		status, reply := goldenPost(t, ts.URL+"/v1/eco", ecoBody)
		ts.Close()
		srv.Close()
		if status != http.StatusOK {
			t.Fatalf("workers=%d: eco status %d: %s", workers, status, reply)
		}
		if workers == 1 {
			testutil.Golden(t, filepath.Join(goldenDir, "c17_eco_reply.json"), reply)
			continue
		}
		want, err := os.ReadFile(filepath.Join(goldenDir, "c17_eco_reply.json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reply, want) {
			t.Errorf("workers=%d: eco delta drifted from the fixture", workers)
		}
	}
}

// goldenMCTrials is the pinned Monte-Carlo trial budget of the MC
// fixtures: enough draws for a non-degenerate distribution (spread,
// distinct percentiles, a populated histogram), small enough that the
// coarse c17 workload runs the budget in seconds.
const goldenMCTrials = 24

// TestGoldenC17MC pins the Monte-Carlo variation report on the c17
// fixture bit-for-bit: 24 trials at the default sigmas (σVt 15 mV,
// σstrength 5%), seed 7, coarse models — every percentile string, the
// worst-path tally, and the histogram are exact-float encoded, so any
// drift in sampling, trial evaluation, or the streaming reducer shows
// as a byte diff.
func TestGoldenC17MC(t *testing.T) {
	nl, primary, opt := testutil.C17Fixture(t)
	res, err := mc.New(goldenEngine()).Run(context.Background(), mc.Config{
		Backend: engine.BackendSpec{
			Kind: engine.BackendCSM, Tech: testutil.Tech(), CSM: testutil.CoarseConfig(),
		},
		Trials:        goldenMCTrials,
		Seed:          7,
		SigmaVt:       mc.DefaultSigmaVt,
		SigmaStrength: mc.DefaultSigmaStrength,
	}, nl, primary, opt)
	if err != nil {
		t.Fatal(err)
	}
	body, err := mc.MarshalReport("c17", res)
	if err != nil {
		t.Fatal(err)
	}
	testutil.Golden(t, filepath.Join(goldenDir, "c17_mc.json"), body)
}

// TestGoldenServeMC extends the service determinism contract to the
// statistical layer: the pinned /v1/mc request (c17_mc_request.json)
// must reproduce the committed reply byte-for-byte at every worker-pool
// width, and — because the request names the exact engine-fixture
// configuration — the served reply must equal the engine-level
// c17_mc.json fixture too. CI's smoke job POSTs the same request file
// at a real mcsm-serve process and cmps the same reply.
func TestGoldenServeMC(t *testing.T) {
	req := service.MCRequest{
		STARequest: service.STARequest{
			Name:     "c17",
			Netlist:  sta.C17Netlist,
			Format:   "net",
			Config:   "coarse",
			Stimulus: "c17",
			Dt:       "2p",
			Horizon:  "4n",
		},
		Trials:        goldenMCTrials,
		Seed:          7,
		SigmaVt:       "15m",
		SigmaStrength: "0.05",
	}
	reqBody := marshalRequest(t, req)
	testutil.Golden(t, filepath.Join(goldenDir, "c17_mc_request.json"), reqBody)

	for _, workers := range []int{1, 4} {
		srv := service.NewWithEngine(service.Config{}, engine.New(workers, goldenEngine().Cache()))
		ts := httptest.NewServer(srv.Handler())
		status, body := goldenPost(t, ts.URL+"/v1/mc", reqBody)
		ts.Close()
		srv.Close()
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, body)
		}
		if workers == 1 {
			testutil.Golden(t, filepath.Join(goldenDir, "c17_mc_reply.json"), body)
			continue
		}
		want, err := os.ReadFile(filepath.Join(goldenDir, "c17_mc_reply.json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("workers=%d: served MC report drifted from the fixture", workers)
		}
	}

	// The request pins the engine fixture's exact configuration, so the
	// served bytes and the engine-level bytes are one fixture, not two.
	engineFix, err := os.ReadFile(filepath.Join(goldenDir, "c17_mc.json"))
	if err != nil {
		t.Fatal(err)
	}
	reply, err := os.ReadFile(filepath.Join(goldenDir, "c17_mc_reply.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(engineFix, reply) {
		t.Error("served MC reply and engine-level MC fixture disagree")
	}
}

// TestGoldenTracedSTA pins the traced-reply contract of the
// observability layer: a /v1/sta request with "trace": true answers a
// wrapper object whose embedded report is byte-identical to the
// committed golden fixture — tracing may observe a computation, never
// perturb its bytes — with a non-empty span tree riding alongside.
func TestGoldenTracedSTA(t *testing.T) {
	req := service.STARequest{
		Name:     "c17",
		Netlist:  sta.C17Netlist,
		Format:   "net",
		Config:   "coarse",
		Stimulus: "c17",
		Dt:       "2p",
		Horizon:  "4n",
		Trace:    true,
	}
	srv := service.NewWithEngine(service.Config{}, engine.New(0, goldenEngine().Cache()))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	status, body := goldenPost(t, ts.URL+"/v1/sta", marshalRequest(t, req))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var reply service.TracedReply
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("traced reply: %v", err)
	}
	if reply.Trace == nil || reply.Trace.Name != "sta" {
		t.Fatalf("traced reply carries no sta span tree: %+v", reply.Trace)
	}
	want, err := os.ReadFile(filepath.Join(goldenDir, "c17_sta.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := append(append([]byte(nil), reply.Report...), '\n')
	if !bytes.Equal(got, want) {
		t.Error("traced reply's embedded report drifted from the committed fixture")
	}
}

// TestGoldenNAND2Sweep pins one canonical sweep surface: the NAND2 MIS
// skew sweep on the standard test grid with flat-SPICE references every
// fifth point, in the exact-float CSV encoding.
func TestGoldenNAND2Sweep(t *testing.T) {
	runner := sweep.New(goldenEngine(), sweep.Config{
		Tech:     testutil.Tech(),
		CharCfg:  testutil.CoarseConfig(),
		Dt:       4e-12,
		RefEvery: 5,
	})
	grid := sweep.Grid{
		Skews: sweep.Span(-120e-12, 120e-12, 60e-12),
		Slews: []float64{80e-12},
		Loads: []float64{2e-15, 8e-15},
	}
	surf, err := runner.Sweep("NAND2", grid)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, []*sweep.Surface{surf}); err != nil {
		t.Fatal(err)
	}
	testutil.Golden(t, filepath.Join(goldenDir, "nand2_sweep.csv"), buf.Bytes())
}
