module mcsm

go 1.24
