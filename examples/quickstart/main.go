// Quickstart: characterize a NOR2 into an MCSM, simulate one multiple-
// input-switching event against the transistor-level reference, and print
// the delays — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"

	"mcsm/internal/cells"
	"mcsm/internal/csm"
	"mcsm/internal/spice"
	"mcsm/internal/units"
	"mcsm/internal/wave"
)

func main() {
	// 1. Pick the technology and the cell.
	tech := cells.Default130()
	spec, err := cells.Get("NOR2")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Characterize the paper's complete model (Io/IN + capacitances as
	//    4-D tables). FastConfig keeps this to ~a second; DefaultConfig is
	//    the production setting.
	fmt.Println("characterizing NOR2 (MCSM)...")
	model, err := csm.Characterize(tech, spec, csm.KindMCSM, csm.FastConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build a MIS stimulus: both inputs fall together at 1 ns, so the
	//    output rises through the PMOS stack.
	vdd := tech.Vdd
	const tEnd = 3e-9
	wa := wave.SaturatedRamp(vdd, 0, 1e-9, 80*units.PS, tEnd)
	wb := wave.SaturatedRamp(vdd, 0, 1e-9, 80*units.PS, tEnd)
	load := csm.CapLoad(cells.FanoutCap(tech, 2)) // FO2-equivalent

	// 4. One stage simulation with the model...
	sr, err := csm.SimulateStage(model, []wave.Waveform{wa, wb}, load, 0, tEnd, units.PS)
	if err != nil {
		log.Fatal(err)
	}
	dModel, err := wave.Delay50(wa, sr.Out, vdd, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 5. ...and the transistor-level reference for comparison.
	c := spice.NewCircuit()
	vddN := c.Node("vdd")
	a, b, out := c.Node("a"), c.Node("b"), c.Node("out")
	c.AddVSource("VDD", vddN, spice.Ground, spice.DC(vdd))
	c.AddVSource("VA", a, spice.Ground, wa)
	c.AddVSource("VB", b, spice.Ground, wb)
	cells.NOR2(c, tech, "X", []spice.Node{a, b}, out, vddN, 1)
	c.AddCapacitor("CL", out, spice.Ground, float64(load))
	res, err := spice.NewEngine(c, spice.DefaultOptions()).Run(0, tEnd, units.PS)
	if err != nil {
		log.Fatal(err)
	}
	dRef, err := wave.Delay50(wa, res.Wave(out), vdd, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MIS rise delay: reference %s, MCSM %s (error %s)\n",
		units.FormatSeconds(dRef), units.FormatSeconds(dModel),
		units.Percent((dModel-dRef)/dRef))
	fmt.Printf("model internal node settles at %s\n",
		units.FormatVolts(sr.VN.Last()))
}
