// statimer runs the waveform-based timing engine on a small reconvergent
// netlist, contrasting MIS-aware propagation with the conventional SIS
// assumption and validating both against a flat transistor simulation.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"mcsm/internal/cells"
	"mcsm/internal/csm"
	"mcsm/internal/sta"
	"mcsm/internal/units"
	"mcsm/internal/wave"
)

const netlistSrc = `
# y = !( !a NOR !(b·c) ) — U3 sees a genuine MIS event
input a b c
output y
cap n1 1e-15
cap n2 1e-15
inst U1 INV   n1 a
inst U2 NAND2 n2 b c
inst U3 NOR2  n3 n1 n2
inst U4 INV   y  n3
`

func main() {
	tech := cells.Default130()
	nl, err := sta.ParseNetlist(strings.NewReader(netlistSrc))
	if err != nil {
		log.Fatal(err)
	}

	models := map[string]*csm.Model{}
	for cell, kind := range map[string]csm.Kind{
		"INV": csm.KindSIS, "NAND2": csm.KindMCSM, "NOR2": csm.KindMCSM,
	} {
		fmt.Printf("characterizing %s (%s)...\n", cell, kind)
		spec, err := cells.Get(cell)
		if err != nil {
			log.Fatal(err)
		}
		if models[cell], err = csm.Characterize(tech, spec, kind, csm.FastConfig()); err != nil {
			log.Fatal(err)
		}
	}

	vdd := tech.Vdd
	primary := map[string]wave.Waveform{
		"a": wave.SaturatedRamp(0, vdd, 1.00*units.NS, 80*units.PS, 4*units.NS),
		"b": wave.SaturatedRamp(0, vdd, 0.95*units.NS, 80*units.PS, 4*units.NS),
		"c": wave.Constant(vdd, 0, 4*units.NS),
	}
	opt := sta.Options{Horizon: 4 * units.NS}

	mis, err := sta.Analyze(nl, models, primary, sta.Options{Mode: sta.ModeMIS, Horizon: opt.Horizon})
	if err != nil {
		log.Fatal(err)
	}
	sis, err := sta.Analyze(nl, models, primary, sta.Options{Mode: sta.ModeSIS, Horizon: opt.Horizon})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running flat transistor reference...")
	flat, err := sta.FlatReference(nl, tech, primary, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %12s %12s %12s %14s\n", "net", "flat (ps)", "MIS-STA", "SIS-STA", "SIS error")
	for _, net := range []string{"n1", "n2", "n3", "y"} {
		f := flat.Nets[net].Arrival
		misA := mis.Nets[net].Arrival
		sisA := sis.Nets[net].Arrival
		fmt.Printf("%-6s %12.2f %12.2f %12.2f %14s\n",
			net, f*1e12, misA*1e12, sisA*1e12,
			units.FormatSeconds(math.Abs(sisA-f)))
	}
	fmt.Printf("\nMIS events detected at: %v\n", mis.MISInstances)
}
