// crosstalk runs the paper's noise-analysis flow (§4, Figs. 10/12): a
// victim net coupled to an aggressor through 50 fF, feeding a NOR2 modeled
// either at transistor level or as an MCSM, with the aggressor's switching
// instant swept.
package main

import (
	"fmt"
	"log"
	"math"

	"mcsm/internal/cells"
	"mcsm/internal/csm"
	"mcsm/internal/noise"
	"mcsm/internal/units"
	"mcsm/internal/wave"
)

func main() {
	tech := cells.Default130()
	fmt.Println("characterizing NOR2 (MCSM)...")
	spec, err := cells.Get("NOR2")
	if err != nil {
		log.Fatal(err)
	}
	model, err := csm.Characterize(tech, spec, csm.KindMCSM, csm.FastConfig())
	if err != nil {
		log.Fatal(err)
	}

	cfg := noise.Default()
	cfg.TEnd = 4.2 * units.NS
	fmt.Printf("\nvictim arrival %s, coupling %s, NOR2 load FO%d\n",
		units.FormatSeconds(cfg.VictimArrival), units.FormatFarads(cfg.CouplingCap), cfg.Fanout)
	fmt.Printf("%-14s %14s %14s %12s %10s\n",
		"injection", "ref 50% (ns)", "mcsm 50% (ns)", "delay err", "RMSE/Vdd")

	var sumRMSE float64
	var n int
	err = noise.InjectionSweep(tech, cfg, model, 2.0*units.NS, 3.0*units.NS, 100*units.PS,
		func(tInj float64, ref, mod *noise.Result) error {
			tRef, ok1 := ref.Out.CrossTime(tech.Vdd/2, false, 2.0*units.NS)
			tMod, ok2 := mod.Out.CrossTime(tech.Vdd/2, false, 2.0*units.NS)
			if !ok1 || !ok2 {
				return fmt.Errorf("missing crossing at %g", tInj)
			}
			rmse := wave.RMSE(ref.Out, mod.Out, 1.8*units.NS, cfg.TEnd-0.2*units.NS, 1200) / tech.Vdd
			sumRMSE += rmse
			n++
			fmt.Printf("%-14s %14.4f %14.4f %12s %10s\n",
				units.FormatSeconds(tInj), tRef*1e9, tMod*1e9,
				units.FormatSeconds(math.Abs(tMod-tRef)), units.Percent(rmse))
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naverage RMSE %s of Vdd over %d points (paper: 1.4%%)\n",
		units.Percent(sumRMSE/float64(n)), n)
}
