// misdelay reproduces the paper's §2.2 motivation study interactively: the
// NOR2 '11'→'00' transition under the two input histories, swept over
// fanout loads — Figs. 3–5 as a runnable program.
package main

import (
	"fmt"
	"log"

	"mcsm/internal/cells"
	"mcsm/internal/csm"
	"mcsm/internal/units"
	"mcsm/internal/wave"
)

func main() {
	tech := cells.Default130()
	tm := cells.DefaultHistoryTiming()

	fmt.Println("characterizing NOR2 (MCSM)...")
	spec, err := cells.Get("NOR2")
	if err != nil {
		log.Fatal(err)
	}
	model, err := csm.Characterize(tech, spec, csm.KindMCSM, csm.FastConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nhistory effect vs load (reference = transistor level):")
	fmt.Printf("%-6s %12s %12s %10s %12s\n", "load", "case1 (ps)", "case2 (ps)", "diff", "mcsm diff")
	for _, fo := range []int{1, 2, 4, 8} {
		var refD, modD [3]float64
		for caseNo := 1; caseNo <= 2; caseNo++ {
			// Transistor-level reference with real fanout inverters.
			eng, _, inst := cells.NOR2HistoryScenario(tech, caseNo, fo, tm)
			res, err := eng.Run(0, tm.TEnd, units.PS)
			if err != nil {
				log.Fatal(err)
			}
			refD[caseNo] = measure(res.Wave(inst.Pins["Out"]), tech.Vdd, tm)

			// Model with the lumped equivalent load.
			wa, wb := cells.NOR2HistoryInputs(tech.Vdd, caseNo, tm)
			sr, err := csm.SimulateStage(model, []wave.Waveform{wa, wb},
				csm.CapLoad(cells.FanoutCap(tech, fo)), 0, tm.TEnd, units.PS)
			if err != nil {
				log.Fatal(err)
			}
			modD[caseNo] = measure(sr.Out, tech.Vdd, tm)
		}
		fmt.Printf("%-6s %12.1f %12.1f %10s %12s\n",
			fmt.Sprintf("FO%d", fo),
			refD[1]*1e12, refD[2]*1e12,
			units.Percent((refD[2]-refD[1])/refD[1]),
			units.Percent((modD[2]-modD[1])/modD[1]))
	}
	fmt.Println("\ncase 1 = '10'→'11'→'00' (internal node left high: fast)")
	fmt.Println("case 2 = '01'→'11'→'00' (internal node at |Vt,p|: slow)")
}

func measure(out wave.Waveform, vdd float64, tm cells.HistoryTiming) float64 {
	tIn := tm.TSwitch + tm.Slew/2
	tOut, err := wave.OutputCross50(out, vdd, true, tIn)
	if err != nil {
		log.Fatal(err)
	}
	return tOut - tIn
}
